#include "schema/multi_table.h"

#include <algorithm>

#include "mediate/mediator.h"

namespace paygo {
namespace {

/// Union-find over table indices.
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t Find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent[Find(a)] = Find(b); }
};

bool TablesShareAttribute(const MultiTableSource::Table& a,
                          const MultiTableSource::Table& b,
                          const Tokenizer& tokenizer,
                          const TermSimilarity& sim, double threshold) {
  for (const std::string& attr_a : a.attributes) {
    const auto terms_a = tokenizer.Tokenize(attr_a);
    for (const std::string& attr_b : b.attributes) {
      const auto terms_b = tokenizer.Tokenize(attr_b);
      if (AttributeNameSimilarity(terms_a, terms_b, sim, threshold) >=
          threshold) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::vector<Schema> DecomposeMultiTableSource(
    const MultiTableSource& source, const Tokenizer& tokenizer,
    const MultiTableOptions& options) {
  std::vector<const MultiTableSource::Table*> tables;
  for (const auto& t : source.tables) {
    if (!t.attributes.empty()) tables.push_back(&t);
  }
  std::vector<Schema> out;
  if (tables.empty()) return out;

  switch (options.decomposition) {
    case MultiTableDecomposition::kPerTable: {
      for (const auto* t : tables) {
        out.emplace_back(source.source_name + "." + t->table_name,
                         t->attributes);
      }
      return out;
    }
    case MultiTableDecomposition::kJoined: {
      const TermSimilarity sim(options.similarity_kind);
      UnionFind uf(tables.size());
      for (std::size_t i = 0; i < tables.size(); ++i) {
        for (std::size_t j = i + 1; j < tables.size(); ++j) {
          if (uf.Find(i) == uf.Find(j)) continue;
          if (TablesShareAttribute(*tables[i], *tables[j], tokenizer, sim,
                                   options.join_attr_sim)) {
            uf.Union(i, j);
          }
        }
      }
      // Emit one wide schema per component, deduplicating attributes by
      // canonical name; component named after its first table.
      std::vector<std::vector<std::size_t>> groups(tables.size());
      for (std::size_t i = 0; i < tables.size(); ++i) {
        groups[uf.Find(i)].push_back(i);
      }
      for (const auto& group : groups) {
        if (group.empty()) continue;
        Schema schema;
        schema.source_name =
            source.source_name + "." + tables[group[0]]->table_name +
            (group.size() > 1 ? "+" : "");
        std::vector<std::string> seen;
        for (std::size_t ti : group) {
          for (const std::string& attr : tables[ti]->attributes) {
            const std::string canon = CanonicalAttributeName(attr);
            if (std::find(seen.begin(), seen.end(), canon) != seen.end()) {
              continue;
            }
            seen.push_back(canon);
            schema.attributes.push_back(attr);
          }
        }
        out.push_back(std::move(schema));
      }
      return out;
    }
  }
  return out;
}

SchemaCorpus CorpusFromMultiTableSources(
    const std::vector<MultiTableSource>& sources,
    const std::vector<std::vector<std::string>>& labels_per_source,
    const Tokenizer& tokenizer, const MultiTableOptions& options) {
  SchemaCorpus corpus;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const std::vector<std::string> labels =
        s < labels_per_source.size() ? labels_per_source[s]
                                     : std::vector<std::string>{};
    for (Schema& schema :
         DecomposeMultiTableSource(sources[s], tokenizer, options)) {
      corpus.Add(std::move(schema), labels);
    }
  }
  return corpus;
}

}  // namespace paygo
