#include "schema/corpus.h"

#include <algorithm>
#include <map>
#include <set>

namespace paygo {

std::size_t SchemaCorpus::Add(Schema schema, std::vector<std::string> labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  schemas_.push_back(std::move(schema));
  labels_.push_back(std::move(labels));
  return schemas_.size() - 1;
}

std::vector<std::string> SchemaCorpus::AllLabels() const {
  std::set<std::string> all;
  for (const auto& ls : labels_) all.insert(ls.begin(), ls.end());
  return std::vector<std::string>(all.begin(), all.end());
}

CorpusStats SchemaCorpus::ComputeStats(const Tokenizer& tokenizer) const {
  CorpusStats stats;
  stats.num_schemas = schemas_.size();
  if (schemas_.empty()) return stats;

  std::size_t total_terms = 0;
  for (const Schema& s : schemas_) {
    const std::size_t n = tokenizer.TokenizeAll(s.attributes).size();
    stats.max_terms_per_schema = std::max(stats.max_terms_per_schema, n);
    total_terms += n;
  }
  stats.avg_terms_per_schema =
      static_cast<double>(total_terms) / static_cast<double>(schemas_.size());

  std::map<std::string, std::size_t> per_label;
  std::size_t total_labels = 0;
  for (const auto& ls : labels_) {
    stats.max_labels_per_schema = std::max(stats.max_labels_per_schema,
                                           ls.size());
    total_labels += ls.size();
    for (const std::string& l : ls) ++per_label[l];
  }
  stats.num_labels = per_label.size();
  stats.avg_labels_per_schema =
      static_cast<double>(total_labels) / static_cast<double>(schemas_.size());
  if (!per_label.empty()) {
    std::size_t total_schemas_in_labels = 0;
    for (const auto& [label, count] : per_label) {
      stats.max_schemas_per_label = std::max(stats.max_schemas_per_label,
                                             count);
      total_schemas_in_labels += count;
    }
    stats.avg_schemas_per_label =
        static_cast<double>(total_schemas_in_labels) /
        static_cast<double>(per_label.size());
  }
  return stats;
}

SchemaCorpus SchemaCorpus::Union(const SchemaCorpus& a, const SchemaCorpus& b,
                                 std::string name) {
  SchemaCorpus out(std::move(name));
  for (std::size_t i = 0; i < a.size(); ++i) out.Add(a.schema(i), a.labels(i));
  for (std::size_t i = 0; i < b.size(); ++i) out.Add(b.schema(i), b.labels(i));
  return out;
}

}  // namespace paygo
