#include "schema/lexicon.h"

#include <algorithm>

namespace paygo {

Lexicon Lexicon::Build(const SchemaCorpus& corpus, const Tokenizer& tokenizer) {
  Lexicon lex;
  // First pass: tokenize each schema into its distinct sorted term strings.
  std::vector<std::vector<std::string>> per_schema;
  per_schema.reserve(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    per_schema.push_back(tokenizer.TokenizeAll(corpus.schema(i).attributes));
  }
  // Global sorted distinct-term vector L.
  std::vector<std::string> all;
  for (const auto& ts : per_schema) all.insert(all.end(), ts.begin(), ts.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  lex.terms_ = std::move(all);
  lex.term_index_.reserve(lex.terms_.size());
  for (std::uint32_t j = 0; j < lex.terms_.size(); ++j) {
    lex.term_index_.emplace(lex.terms_[j], j);
  }
  // Per-schema index sets T_i and document frequencies.
  lex.term_freq_.assign(lex.terms_.size(), 0);
  lex.schema_terms_.reserve(per_schema.size());
  for (const auto& ts : per_schema) {
    std::vector<std::uint32_t> ids;
    ids.reserve(ts.size());
    for (const std::string& t : ts) {
      const std::uint32_t j = lex.term_index_.at(t);
      ids.push_back(j);
      ++lex.term_freq_[j];
    }
    std::sort(ids.begin(), ids.end());
    lex.schema_terms_.push_back(std::move(ids));
  }
  return lex;
}

Lexicon Lexicon::FromTerms(std::vector<std::string> terms,
                           const SchemaCorpus& corpus,
                           const Tokenizer& tokenizer) {
  Lexicon lex;
  lex.terms_ = std::move(terms);
  lex.term_index_.reserve(lex.terms_.size());
  for (std::uint32_t j = 0; j < lex.terms_.size(); ++j) {
    lex.term_index_.emplace(lex.terms_[j], j);
  }
  lex.term_freq_.assign(lex.terms_.size(), 0);
  lex.schema_terms_.reserve(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    std::vector<std::uint32_t> ids;
    for (const std::string& t :
         tokenizer.TokenizeAll(corpus.schema(i).attributes)) {
      const auto it = lex.term_index_.find(t);
      if (it == lex.term_index_.end()) continue;  // outside the frozen L
      ids.push_back(it->second);
      ++lex.term_freq_[it->second];
    }
    std::sort(ids.begin(), ids.end());
    lex.schema_terms_.push_back(std::move(ids));
  }
  return lex;
}

std::optional<std::uint32_t> Lexicon::IndexOf(std::string_view term) const {
  const auto it = term_index_.find(std::string(term));
  if (it == term_index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace paygo
