#ifndef PAYGO_SCHEMA_MULTI_TABLE_H_
#define PAYGO_SCHEMA_MULTI_TABLE_H_

/// \file multi_table.h
/// \brief Multi-table data sources (Chapter 7 future work).
///
/// The thesis restricts itself to single-table schemas ("most data sources
/// on the web belong to this category") and lists "considering data
/// sources more general than single-table sources" as future work. This
/// module bridges the gap the pay-as-you-go way: a multi-table source is
/// decomposed into single-table schemas the pipeline already handles.
/// Two decompositions are offered:
///
///  * per-table — each table becomes its own schema (a source can then
///    legitimately span several domains, e.g. a university database with
///    both a courses and a people table);
///  * joined — tables that share (t_sim-similar) attributes are merged
///    into one wide schema, approximating the universal relation of the
///    source.

#include <string>
#include <vector>

#include "schema/corpus.h"
#include "schema/schema.h"
#include "text/term_similarity.h"
#include "text/tokenizer.h"

namespace paygo {

/// \brief A structured source exposing several named tables.
struct MultiTableSource {
  std::string source_name;
  struct Table {
    std::string table_name;
    std::vector<std::string> attributes;
  };
  std::vector<Table> tables;
};

/// \brief How to decompose a multi-table source.
enum class MultiTableDecomposition {
  /// One schema per table, named "<source>.<table>".
  kPerTable,
  /// Connected components of tables sharing a (t_sim-similar) attribute
  /// are merged into one wide schema (duplicate attributes deduplicated).
  kJoined,
};

/// \brief Options of the decomposition.
struct MultiTableOptions {
  MultiTableDecomposition decomposition = MultiTableDecomposition::kPerTable;
  /// Attribute-name similarity threshold for the kJoined grouping.
  double join_attr_sim = 0.8;
  TermSimilarityKind similarity_kind = TermSimilarityKind::kLcs;
};

/// Decomposes \p source into single-table schemas ready for a
/// SchemaCorpus. Tables without attributes are skipped.
std::vector<Schema> DecomposeMultiTableSource(
    const MultiTableSource& source, const Tokenizer& tokenizer,
    const MultiTableOptions& options = {});

/// Convenience: decomposes several sources straight into a corpus,
/// attaching \p labels_per_source (parallel to \p sources; may be empty).
SchemaCorpus CorpusFromMultiTableSources(
    const std::vector<MultiTableSource>& sources,
    const std::vector<std::vector<std::string>>& labels_per_source,
    const Tokenizer& tokenizer, const MultiTableOptions& options = {});

}  // namespace paygo

#endif  // PAYGO_SCHEMA_MULTI_TABLE_H_
