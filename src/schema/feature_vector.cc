#include "schema/feature_vector.h"

namespace paygo {

FeatureVectorizer::FeatureVectorizer(const Lexicon& lexicon,
                                     FeatureVectorizerOptions options)
    : lexicon_(lexicon), options_(options) {
  index_ = std::make_unique<SimilarityIndex>(
      lexicon_.terms(), TermSimilarity(options_.similarity_kind),
      options_.tau_t_sim, options_.num_threads);
}

DynamicBitset FeatureVectorizer::VectorizeSchemaTerms(
    const std::vector<std::uint32_t>& term_ids) const {
  DynamicBitset f(lexicon_.dim());
  // F[j] = 1 iff some t in T_i has t_sim(L_j, t) >= tau. Since t_sim is
  // symmetric and every t in T_i is itself a lexicon term, this is exactly
  // the union of the tau-neighborhoods of the schema's terms.
  for (std::uint32_t k : term_ids) {
    for (std::uint32_t j : index_->Neighbors(k)) f.Set(j);
  }
  return f;
}

std::vector<DynamicBitset> FeatureVectorizer::VectorizeCorpus() const {
  std::vector<DynamicBitset> out;
  out.reserve(lexicon_.num_schemas());
  for (std::size_t i = 0; i < lexicon_.num_schemas(); ++i) {
    out.push_back(VectorizeSchemaTerms(lexicon_.schema_terms(i)));
  }
  return out;
}

DynamicBitset FeatureVectorizer::VectorizeExternalTerms(
    const std::vector<std::string>& terms) const {
  DynamicBitset f(lexicon_.dim());
  for (const std::string& t : terms) {
    for (std::uint32_t j : index_->Match(t)) f.Set(j);
  }
  return f;
}

}  // namespace paygo
