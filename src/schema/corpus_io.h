#ifndef PAYGO_SCHEMA_CORPUS_IO_H_
#define PAYGO_SCHEMA_CORPUS_IO_H_

/// \file corpus_io.h
/// \brief Plain-text serialization of schema corpora.
///
/// Format (one schema per line; '#' starts a comment; blank lines ignored):
///
///     corpus <name>
///     schema <source> :: <label1>, <label2> :: <attr1> ; <attr2> ; ...
///
/// The label field may be empty. This format is what the examples read and
/// write, so users can bring their own extracted schemas (the thesis's
/// manual extraction step of Figure 6.1) without writing C++.

#include <string>
#include <string_view>

#include "schema/corpus.h"
#include "util/status.h"

namespace paygo {

/// Parses a corpus from the text format above.
Result<SchemaCorpus> ParseCorpus(std::string_view text);

/// Serializes \p corpus into the text format above.
std::string SerializeCorpus(const SchemaCorpus& corpus);

/// Reads and parses a corpus file from disk.
Result<SchemaCorpus> LoadCorpusFile(const std::string& path);

/// Writes \p corpus to \p path.
Status SaveCorpusFile(const SchemaCorpus& corpus, const std::string& path);

}  // namespace paygo

#endif  // PAYGO_SCHEMA_CORPUS_IO_H_
