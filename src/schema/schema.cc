#include "schema/schema.h"

// Schema is a plain aggregate; all behaviour lives in SchemaCorpus and the
// text pipeline. This translation unit exists so the header stays a cheap
// include and future non-inline members have a home.
