#ifndef PAYGO_SCHEMA_FEATURE_VECTOR_H_
#define PAYGO_SCHEMA_FEATURE_VECTOR_H_

/// \file feature_vector.h
/// \brief Algorithm 1: CreateFeatureVectors.
///
/// Each schema S_i is characterized by a binary vector F_i of dimension
/// dim L, where F_i[j] = 1 iff max over t in T_i of t_sim(L_j, t) >=
/// tau_t_sim. The thesis default is the LCS-based t_sim with
/// tau_t_sim = 0.8.

#include <memory>
#include <string>
#include <vector>

#include "schema/lexicon.h"
#include "text/similarity_index.h"
#include "text/term_similarity.h"
#include "util/bitset.h"

namespace paygo {

/// \brief Options of the feature-vector construction.
struct FeatureVectorizerOptions {
  /// Term-similarity threshold tau_t_sim (thesis: 0.8).
  double tau_t_sim = 0.8;
  /// Which t_sim to use (thesis default: LCS-based).
  TermSimilarityKind similarity_kind = TermSimilarityKind::kLcs;
  /// Worker threads for the similarity-index build (0 = hardware
  /// concurrency, 1 = serial, the default). The index is bit-identical at
  /// any thread count.
  std::size_t num_threads = 1;
};

/// \brief Builds binary feature vectors for schemas and keyword queries.
class FeatureVectorizer {
 public:
  /// Builds the tau-neighborhood index over \p lexicon. The lexicon must
  /// outlive the vectorizer.
  FeatureVectorizer(const Lexicon& lexicon,
                    FeatureVectorizerOptions options = {});

  /// Copy of \p other rebound to \p lexicon, reusing the already-built
  /// similarity index instead of recomputing it. \p lexicon must hold the
  /// same terms \p other was built over (the deep-copy case of
  /// IntegrationSystem::Clone).
  FeatureVectorizer(const Lexicon& lexicon, const FeatureVectorizer& other)
      : lexicon_(lexicon),
        options_(other.options_),
        index_(std::make_unique<SimilarityIndex>(*other.index_)) {}

  /// F_i for every schema the lexicon was built over (Algorithm 1's output
  /// set F). Vector order matches the corpus order.
  std::vector<DynamicBitset> VectorizeCorpus() const;

  /// F_i for one schema, given its T_i term indices.
  DynamicBitset VectorizeSchemaTerms(
      const std::vector<std::uint32_t>& term_ids) const;

  /// F_Q for an arbitrary canonicalized term set (keyword queries,
  /// Section 5.1); terms need not be in the lexicon.
  DynamicBitset VectorizeExternalTerms(
      const std::vector<std::string>& terms) const;

  /// The feature-space dimensionality dim L.
  std::size_t dim() const { return lexicon_.dim(); }
  const Lexicon& lexicon() const { return lexicon_; }
  const SimilarityIndex& index() const { return *index_; }
  const FeatureVectorizerOptions& options() const { return options_; }

 private:
  const Lexicon& lexicon_;
  FeatureVectorizerOptions options_;
  std::unique_ptr<SimilarityIndex> index_;
};

}  // namespace paygo

#endif  // PAYGO_SCHEMA_FEATURE_VECTOR_H_
