#ifndef PAYGO_SCHEMA_CORPUS_H_
#define PAYGO_SCHEMA_CORPUS_H_

/// \file corpus.h
/// \brief A labeled collection of schemas (the experimental unit of Ch. 6).
///
/// Each schema may carry a set of ground-truth domain labels B(S_i)
/// (Section 6.1.2) used only for evaluation — the clustering and
/// classification algorithms never see them.

#include <cstddef>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "text/tokenizer.h"

namespace paygo {

/// \brief Table 6.1-style statistics about a corpus.
struct CorpusStats {
  std::size_t num_schemas = 0;
  std::size_t max_terms_per_schema = 0;
  double avg_terms_per_schema = 0.0;
  std::size_t num_labels = 0;
  std::size_t max_labels_per_schema = 0;
  double avg_labels_per_schema = 0.0;
  std::size_t max_schemas_per_label = 0;
  double avg_schemas_per_label = 0.0;
};

/// \brief An ordered collection of schemas with optional evaluation labels.
class SchemaCorpus {
 public:
  SchemaCorpus() = default;
  /// Names the corpus (e.g. "DW", "SS", "DDH") for experiment output.
  explicit SchemaCorpus(std::string name) : name_(std::move(name)) {}

  /// Appends a schema with its (possibly empty) ground-truth label set.
  /// Returns the schema's index.
  std::size_t Add(Schema schema, std::vector<std::string> labels = {});

  std::size_t size() const { return schemas_.size(); }
  bool empty() const { return schemas_.empty(); }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const Schema& schema(std::size_t i) const { return schemas_[i]; }
  const std::vector<Schema>& schemas() const { return schemas_; }
  /// Ground-truth labels B(S_i) of schema \p i (evaluation only).
  const std::vector<std::string>& labels(std::size_t i) const {
    return labels_[i];
  }

  /// All distinct labels across the corpus, sorted.
  std::vector<std::string> AllLabels() const;

  /// Computes Table 6.1-style statistics, tokenizing with \p tokenizer.
  CorpusStats ComputeStats(const Tokenizer& tokenizer) const;

  /// Concatenates two corpora (labels carried over); the result is named
  /// \p name.
  static SchemaCorpus Union(const SchemaCorpus& a, const SchemaCorpus& b,
                            std::string name);

 private:
  std::string name_;
  std::vector<Schema> schemas_;
  std::vector<std::vector<std::string>> labels_;
};

}  // namespace paygo

#endif  // PAYGO_SCHEMA_CORPUS_H_
