#include "schema/corpus_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace paygo {
namespace {

/// Splits on the literal "::" separator.
std::vector<std::string> SplitOnDoubleColon(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find("::", start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 2;
  }
}

}  // namespace

Result<SchemaCorpus> ParseCorpus(std::string_view text) {
  SchemaCorpus corpus;
  std::size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = Trim(raw_line);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;

    if (StartsWith(line, "corpus ")) {
      corpus.set_name(Trim(line.substr(7)));
      continue;
    }
    if (!StartsWith(line, "schema ")) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 'corpus' or 'schema'");
    }
    const std::vector<std::string> fields =
        SplitOnDoubleColon(std::string_view(line).substr(7));
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          ": expected 'schema <source> :: <labels> :: <attributes>'");
    }
    Schema schema;
    schema.source_name = Trim(fields[0]);
    std::vector<std::string> labels;
    for (const std::string& l : Split(fields[1], ',')) {
      std::string t = Trim(l);
      if (!t.empty()) labels.push_back(std::move(t));
    }
    for (const std::string& a : Split(fields[2], ';')) {
      std::string t = Trim(a);
      if (!t.empty()) schema.attributes.push_back(std::move(t));
    }
    if (schema.attributes.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": schema has no attributes");
    }
    corpus.Add(std::move(schema), std::move(labels));
  }
  return corpus;
}

std::string SerializeCorpus(const SchemaCorpus& corpus) {
  std::ostringstream os;
  if (!corpus.name().empty()) os << "corpus " << corpus.name() << "\n";
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Schema& s = corpus.schema(i);
    os << "schema " << s.source_name << " :: "
       << Join(corpus.labels(i), ", ") << " :: "
       << Join(s.attributes, " ; ") << "\n";
  }
  return os.str();
}

Result<SchemaCorpus> LoadCorpusFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCorpus(buf.str());
}

Status SaveCorpusFile(const SchemaCorpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << SerializeCorpus(corpus);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace paygo
