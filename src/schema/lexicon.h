#ifndef PAYGO_SCHEMA_LEXICON_H_
#define PAYGO_SCHEMA_LEXICON_H_

/// \file lexicon.h
/// \brief The global sorted term vector L of Algorithm 1.
///
/// Building the lexicon tokenizes every schema exactly once and records both
/// the sorted distinct-term vector L (the feature space) and, per schema,
/// the set T_i of its term indices into L.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "schema/corpus.h"
#include "text/tokenizer.h"

namespace paygo {

/// \brief Sorted distinct terms over a corpus plus per-schema term sets.
class Lexicon {
 public:
  /// Tokenizes every schema of \p corpus with \p tokenizer and builds L.
  static Lexicon Build(const SchemaCorpus& corpus, const Tokenizer& tokenizer);

  /// Rebuilds a lexicon over a FROZEN term vector \p terms (must be sorted
  /// and distinct): T_i keeps only the terms of schema i that appear in
  /// \p terms, exactly the frozen-lexicon semantics of the incremental add
  /// path. This is how persistence restores a system whose corpus grew via
  /// AddSchema after the original Build — rebuilding L from the grown
  /// corpus would widen the feature space and orphan the persisted
  /// classifier conditionals. Note TermFrequency here counts the whole
  /// corpus (evaluation-only data; the serving paths never read it).
  static Lexicon FromTerms(std::vector<std::string> terms,
                           const SchemaCorpus& corpus,
                           const Tokenizer& tokenizer);

  /// The sorted distinct terms L_1..L_dimL.
  const std::vector<std::string>& terms() const { return terms_; }
  /// dim L.
  std::size_t dim() const { return terms_.size(); }
  /// Term at index \p j.
  const std::string& term(std::size_t j) const { return terms_[j]; }

  /// Index of \p term in L, if present.
  std::optional<std::uint32_t> IndexOf(std::string_view term) const;

  /// T_i: sorted lexicon indices of the terms of schema \p i.
  const std::vector<std::uint32_t>& schema_terms(std::size_t i) const {
    return schema_terms_[i];
  }
  /// Number of schemas the lexicon was built over.
  std::size_t num_schemas() const { return schema_terms_.size(); }

  /// Number of schemas whose T_i contains term \p j (document frequency).
  std::size_t TermFrequency(std::size_t j) const { return term_freq_[j]; }

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, std::uint32_t> term_index_;
  std::vector<std::vector<std::uint32_t>> schema_terms_;
  std::vector<std::size_t> term_freq_;
};

}  // namespace paygo

#endif  // PAYGO_SCHEMA_LEXICON_H_
