#ifndef PAYGO_OBS_BUILD_INFO_H_
#define PAYGO_OBS_BUILD_INFO_H_

/// \file build_info.h
/// \brief Build-provenance snapshot: which kernels, toggles, and compiler
/// produced this binary.
///
/// A fleet mixes binaries — a replica built with `-march=native` answers
/// faster than a portable-kernel primary, a TSan shard is 10x slower by
/// design — and latency triage goes nowhere until that skew is visible.
/// This module freezes the relevant build configuration into strings baked
/// at compile time: the selected bitset popcount kernel
/// (`DynamicBitset::KernelName()`), the tracing and sanitizer CMake
/// toggles, and the compiler plus flags. Surfaced as a `"build_info"`
/// section in `/statusz` and by `paygo_cli --version`.

#include <string>

namespace paygo {

/// \brief Compile-time configuration of this binary.
struct BuildInfo {
  std::string kernel;      ///< bitset kernel: "avx2", "neon", or "unrolled".
  bool tracing_compiled;   ///< PAYGO_TRACING (span sites compiled in).
  std::string sanitizer;   ///< PAYGO_SANITIZE: "", "thread", or "address".
  bool native_arch;        ///< PAYGO_NATIVE_ARCH (-march=native).
  std::string build_type;  ///< CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo".
  std::string compiler;    ///< Compiler id + version (__VERSION__).
  std::string cxx_flags;   ///< CMAKE_CXX_FLAGS as configured.
};

/// The configuration this binary was built with.
const BuildInfo& GetBuildInfo();

/// One JSON object, e.g. `{"kernel": "avx2", "tracing_compiled": true,
/// "sanitizer": "", "native_arch": false, "build_type": "RelWithDebInfo",
/// "compiler": "...", "cxx_flags": "..."}`. Spliced into `/statusz`.
std::string BuildInfoJson();

/// Human-readable multi-line form (`paygo_cli --version`).
std::string BuildInfoText();

}  // namespace paygo

#endif  // PAYGO_OBS_BUILD_INFO_H_
