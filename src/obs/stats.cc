#include "obs/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace paygo {

namespace {

std::size_t BucketIndexFor(std::uint64_t micros) {
  if (micros <= 1) return 0;
  // Bucket i covers (2^(i-1), 2^i]: index = ceil(log2(micros)).
  const int bits = 64 - __builtin_clzll(micros - 1);
  return std::min<std::size_t>(static_cast<std::size_t>(bits),
                               LatencyHistogram::kNumBuckets - 1);
}

[[noreturn]] void DieKindMismatch(const std::string& name) {
  std::fprintf(stderr,
               "StatsRegistry: metric '%s' already registered as a "
               "different kind\n",
               name.c_str());
  std::abort();
}

}  // namespace

// ------------------------------------------------- shared dump helpers

HistogramSummary SummarizeHistogram(const LatencyHistogram& h) {
  HistogramSummary s;
  s.count = h.Count();
  s.sum_us = h.SumMicros();
  s.mean_us = h.MeanMicros();
  s.p50_us = h.PercentileMicros(0.50);
  s.p95_us = h.PercentileMicros(0.95);
  s.p99_us = h.PercentileMicros(0.99);
  return s;
}

std::string HistogramSummaryJson(const LatencyHistogram& h) {
  const HistogramSummary s = SummarizeHistogram(h);
  std::ostringstream os;
  os << "{\"count\": " << s.count << ", \"sum_us\": " << s.sum_us
     << ", \"mean_us\": " << s.mean_us << ", \"p50_us\": " << s.p50_us
     << ", \"p95_us\": " << s.p95_us << ", \"p99_us\": " << s.p99_us
     << ", \"exemplars\": {";
  bool first = true;
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const std::uint64_t id = h.ExemplarTraceId(i);
    if (id == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << LatencyHistogram::BucketUpperMicros(i) << "\": " << id;
  }
  os << "}}";
  return os.str();
}

std::string HistogramSummaryText(const LatencyHistogram& h) {
  const HistogramSummary s = SummarizeHistogram(h);
  std::ostringstream os;
  os << "count=" << s.count << " mean=" << s.mean_us << "us p50=" << s.p50_us
     << "us p95=" << s.p95_us << "us p99=" << s.p99_us << "us";
  return os.str();
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

void AppendPrometheusHistogram(std::ostream& os, const std::string& pname,
                               const LatencyHistogram& h) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    cumulative += h.BucketCount(i);
    os << pname << "_bucket{le=\"" << LatencyHistogram::BucketUpperMicros(i)
       << "\"} " << cumulative << "\n";
  }
  os << pname << "_bucket{le=\"+Inf\"} " << cumulative << "\n"
     << pname << "_sum " << h.SumMicros() << "\n"
     << pname << "_count " << cumulative << "\n";
  // Exemplars ride as a sibling series (`name{label} value` grammar) rather
  // than OpenMetrics `# {...}` suffixes, so every existing exposition
  // parser — including the strict scrape in admin_server_test — keeps
  // working unchanged. One sample per bucket whose exemplar is set.
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const std::uint64_t id = h.ExemplarTraceId(i);
    if (id == 0) continue;
    os << pname << "_exemplar_trace_id{le=\""
       << LatencyHistogram::BucketUpperMicros(i) << "\"} " << id << "\n";
  }
}

// -------------------------------------------------------- LatencyHistogram

void LatencyHistogram::Record(std::uint64_t micros) {
  buckets_[BucketIndexFor(micros)].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

void LatencyHistogram::Record(std::uint64_t micros, std::uint64_t trace_id) {
  const std::size_t i = BucketIndexFor(micros);
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  if (trace_id != 0) exemplars_[i].store(trace_id, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::MeanMicros() const {
  const std::uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(SumMicros()) / n;
}

std::uint64_t LatencyHistogram::BucketUpperMicros(std::size_t i) {
  return i == 0 ? 1 : (std::uint64_t{1} << i);
}

std::uint64_t LatencyHistogram::PercentileMicros(double p) const {
  const std::uint64_t total = Count();
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperMicros(i);
  }
  // Unreachable unless a racing Record() moved Count() under us; saturate
  // at the overflow bound either way.
  return kOverflowBoundMicros;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& e : exemplars_) e.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

// ----------------------------------------------------------- StatsRegistry

StatsRegistry& StatsRegistry::Global() {
  static StatsRegistry* registry = new StatsRegistry();
  return *registry;
}

Counter* StatsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    DieKindMismatch(name);
  }
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* StatsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    DieKindMismatch(name);
  }
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* StatsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    DieKindMismatch(name);
  }
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::string StatsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  // std::map iterates sorted; interleave the three kinds by merging on
  // name so the dump reads alphabetically overall.
  std::map<std::string, std::string> lines;
  for (const auto& [name, c] : counters_) {
    lines[name] = name + " " + std::to_string(c->value());
  }
  for (const auto& [name, g] : gauges_) {
    lines[name] = name + " " + std::to_string(g->value());
  }
  for (const auto& [name, h] : histograms_) {
    lines[name] = name + " " + HistogramSummaryText(*h);
  }
  for (const auto& [name, line] : lines) os << line << "\n";
  return os.str();
}

std::string StatsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ", ";
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    sep();
    os << "\"" << name << "\": " << c->value();
  }
  for (const auto& [name, g] : gauges_) {
    sep();
    os << "\"" << name << "\": " << g->value();
  }
  for (const auto& [name, h] : histograms_) {
    sep();
    os << "\"" << name << "\": " << HistogramSummaryJson(*h);
  }
  os << "}";
  return os.str();
}

std::string StatsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string pname = PrometheusMetricName(name);
    os << "# TYPE " << pname << " counter\n"
       << pname << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pname = PrometheusMetricName(name);
    os << "# TYPE " << pname << " gauge\n"
       << pname << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pname = PrometheusMetricName(name);
    os << "# TYPE " << pname << " histogram\n";
    AppendPrometheusHistogram(os, pname, *h);
  }
  return os.str();
}

StatsSnapshot StatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snapshot;
  for (const auto& [name, c] : counters_) snapshot.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snapshot.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snapshot.histograms[name] = SummarizeHistogram(*h);
  }
  return snapshot;
}

void StatsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

}  // namespace paygo
