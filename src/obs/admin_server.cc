#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/stats.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace paygo {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

void SetSocketTimeouts(int fd, std::uint64_t timeout_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Sends the whole buffer, tolerating short writes. MSG_NOSIGNAL keeps a
/// client that hung up from killing the process with SIGPIPE.
void SendAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return;  // timeout or peer gone; nothing left to salvage
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void SendResponse(int fd, const HttpResponse& response) {
  std::ostringstream head;
  head << "HTTP/1.1 " << response.status << " "
       << ReasonPhrase(response.status) << "\r\n"
       << "Content-Type: " << response.content_type << "\r\n"
       << "Content-Length: " << response.body.size() << "\r\n"
       << "Connection: close\r\n";
  if (response.status == 405) head << "Allow: GET\r\n";
  head << "\r\n";
  const std::string header = head.str();
  SendAll(fd, header.data(), header.size());
  SendAll(fd, response.body.data(), response.body.size());
}

HttpResponse PlainResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

/// Case-insensitive ASCII compare of \p text against lowercase \p lower.
bool EqualsIgnoreCase(const std::string& text, const char* lower) {
  std::size_t i = 0;
  for (; text[i] != '\0' && lower[i] != '\0'; ++i) {
    char c = text[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c != lower[i]) return false;
  }
  return i == text.size() && lower[i] == '\0';
}

std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

struct AdminCounters {
  Counter* requests;
  Counter* errors;  // 4xx/5xx responses, including malformed requests
  Counter* sheds;   // connections 503'd because the handler pool was full
  LatencyHistogram* latency;

  static AdminCounters& Get() {
    static AdminCounters counters = [] {
      StatsRegistry& reg = StatsRegistry::Global();
      return AdminCounters{reg.GetCounter("paygo.admin.requests"),
                           reg.GetCounter("paygo.admin.errors"),
                           reg.GetCounter("paygo.admin.sheds"),
                           reg.GetHistogram("paygo.admin.request_us")};
    }();
    return counters;
  }
};

}  // namespace

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)) {
  if (options_.handler_threads == 0) options_.handler_threads = 1;
  connections_ = std::make_unique<BoundedQueue<int>>(
      options_.pending_connections);
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(std::string path, Handler handler) {
  // The route map is read lock-free by handler threads; mutating it while
  // serving would race. Registration is a setup-time operation.
  if (running()) return;
  handlers_[std::move(path)] = std::move(handler);
}

Result<std::uint16_t> AdminServer::Start() {
  if (running()) return bound_port_;
  if (stopping_.load(std::memory_order_acquire) || connections_->closed()) {
    return Status::FailedPrecondition(
        "admin server was stopped; construct a new one");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("admin port out of range");
  }
  if (handlers_.find("/") == handlers_.end()) {
    // Default index: one registered path per line.
    std::string index;
    for (const auto& [path, handler] : handlers_) {
      index += path + "\n";
    }
    handlers_["/"] = [index](const HttpRequest&) {
      return PlainResponse(200, index);
    };
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad admin bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  pool_.reserve(options_.handler_threads);
  for (std::size_t i = 0; i < options_.handler_threads; ++i) {
    pool_.emplace_back([this] { HandlerLoop(); });
  }
  return bound_port_;
}

void AdminServer::Stop() {
  if (!acceptor_.joinable() && pool_.empty()) return;
  stopping_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  connections_->Close();
  for (std::thread& t : pool_) {
    if (t.joinable()) t.join();
  }
  pool_.clear();
  for (int fd : connections_->DrainNow()) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // The 100ms poll bound is the Stop() latency; accept itself never
    // blocks past it.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetSocketTimeouts(fd, options_.io_timeout_ms);
    int local = fd;
    if (!connections_->TryPush(std::move(local))) {
      // Handler pool saturated: shed instead of queueing unbounded work.
      AdminCounters::Get().sheds->Increment();
      SendResponse(fd, PlainResponse(503, "admin handler pool saturated\n"));
      ::close(fd);
    }
  }
}

void AdminServer::HandlerLoop() {
  while (true) {
    std::optional<int> fd = connections_->Pop();
    if (!fd.has_value()) return;  // closed and drained
    ServeConnection(*fd);
    ::close(*fd);
  }
}

HttpResponse AdminServer::Dispatch(const HttpRequest& request) const {
  const auto it = handlers_.find(request.path);
  if (it == handlers_.end()) {
    return PlainResponse(404, "no handler for " + request.path + "\n");
  }
  try {
    return it->second(request);
  } catch (const std::exception& e) {
    return PlainResponse(500, std::string("handler threw: ") + e.what() +
                                  "\n");
  } catch (...) {
    return PlainResponse(500, "handler threw\n");
  }
}

void AdminServer::ServeConnection(int fd) {
  WallTimer timer;
  AdminCounters& counters = AdminCounters::Get();
  counters.requests->Increment();

  // Read until the header terminator. GET requests have no body we care
  // about, so the headers are the whole request.
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (buffer.size() >= options_.max_request_bytes) {
      counters.errors->Increment();
      SendResponse(fd, PlainResponse(413, "request exceeds " +
                                              std::to_string(
                                                  options_.max_request_bytes) +
                                              " bytes\n"));
      return;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      // Peer closed or timed out mid-request. Nothing well-formed arrived;
      // answer 400 if we got anything at all, otherwise just drop.
      if (!buffer.empty()) {
        counters.errors->Increment();
        SendResponse(fd, PlainResponse(400, "incomplete request\n"));
      }
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    header_end = buffer.find("\r\n\r\n");
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = buffer.find("\r\n");
  const std::string line = buffer.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    counters.errors->Increment();
    SendResponse(fd, PlainResponse(400, "malformed request line\n"));
    return;
  }
  HttpRequest request;
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = request.target.find('?');
  request.path = request.target.substr(0, qmark);
  if (qmark != std::string::npos) request.query = request.target.substr(qmark + 1);
  if (request.target.empty() || request.target[0] != '/') {
    counters.errors->Increment();
    SendResponse(fd, PlainResponse(400, "request target must be a path\n"));
    return;
  }
  if (request.method != "GET") {
    counters.errors->Increment();
    SendResponse(fd, PlainResponse(405, "only GET is supported\n"));
    return;
  }

  // Headers: only Host matters to us (it anchors the parse, and tests
  // assert we accept standard clients); everything else is skipped.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buffer.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string header = buffer.substr(pos, eol - pos);
    const std::size_t colon = header.find(':');
    if (colon != std::string::npos &&
        EqualsIgnoreCase(header.substr(0, colon), "host")) {
      request.host = Trim(header.substr(colon + 1));
    }
    pos = eol + 2;
  }

  // Pooled thread hygiene: whatever trace id a handler installs (e.g. a
  // router endpoint running a traced scatter) is restored before this
  // thread serves its next connection.
  ScopedTraceContext trace_guard(0);
  const HttpResponse response = Dispatch(request);
  if (response.status >= 400) counters.errors->Increment();
  SendResponse(fd, response);
  counters.latency->Record(timer.ElapsedMicros());
}

// A "key=value&key=value" query-string lookup; returns 0 when \p key is
// absent or non-numeric (0 is never a valid trace id, so it doubles as
// "no filter").
std::uint64_t QueryParamU64(const std::string& query, const std::string& key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.compare(0, eq, key) == 0) {
      return std::strtoull(pair.c_str() + eq + 1, nullptr, 10);
    }
    pos = amp + 1;
  }
  return 0;
}

// ------------------------------------------------ obs-level endpoints

void RegisterObsEndpoints(AdminServer& admin) {
  admin.Handle("/healthz", [](const HttpRequest&) {
    return PlainResponse(200, "ok\n");
  });
  admin.Handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = StatsRegistry::Global().ToPrometheus();
    return response;
  });
  admin.Handle("/varz", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = StatsRegistry::Global().ToJson() + "\n";
    return response;
  });
  admin.Handle("/tracez", [](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    // /tracez?trace_id=N narrows the dump to one request's spans.
    response.body =
        Tracer::ExportChromeTrace(QueryParamU64(request.query, "trace_id"));
    return response;
  });
}

// ------------------------------------------------- loopback test client

Result<std::string> AdminHttpGet(std::uint16_t port, const std::string& target,
                                 std::uint64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  SetSocketTimeouts(fd, timeout_ms);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect 127.0.0.1:" + std::to_string(port) +
                           ": " + err);
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  SendAll(fd, request.data(), request.size());
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (response.empty()) {
    return Status::IoError("empty response from 127.0.0.1:" +
                           std::to_string(port) + target);
  }
  return response;
}

}  // namespace paygo
