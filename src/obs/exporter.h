#ifndef PAYGO_OBS_EXPORTER_H_
#define PAYGO_OBS_EXPORTER_H_

/// \file exporter.h
/// \brief Periodic metrics-to-JSONL exporter.
///
/// The admin endpoint (`admin_server.h`) covers pull-based monitoring; the
/// MetricsSnapshotter covers the push side for environments with no scraper
/// — benchmarks, soak tests, air-gapped runs. A background thread wakes on
/// a fixed interval, snapshots the StatsRegistry, diffs the monotone
/// counters against the previous snapshot, and appends one self-contained
/// JSON object per line to a file. Each line carries both the absolute
/// value and the per-interval delta, so a consumer can compute rates
/// without retaining history, and truncated tails (a killed process) cost
/// at most one interval of data.
///
/// Record shape (one line per wake, plus a final record on Stop):
/// \code{.json}
///   {"ts_ms": 1722873600000, "seq": 3,
///    "counters": {"paygo.serve.cache_hits": {"value": 41, "delta": 12}},
///    "gauges": {"paygo.serve.queue_depth": 2},
///    "histograms": {"paygo.serve.latency_us": {"count": 7,
///      "delta_count": 3, "sum_us": 910, "mean_us": 130.0,
///      "p50_us": 128, "p95_us": 256, "p99_us": 256}}}
/// \endcode

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "obs/stats.h"
#include "util/status.h"

namespace paygo {

struct MetricsSnapshotterOptions {
  /// File to append JSONL records to. Created if absent.
  std::string path;
  /// Wake interval. Stop() always writes one final record, so short-lived
  /// processes get at least one line even with a long interval.
  std::uint64_t interval_ms = 1000;
};

/// \brief Background thread appending periodic registry snapshots to a
/// JSONL file. Construct, Start(), Stop() (also run by the destructor).
class MetricsSnapshotter {
 public:
  MetricsSnapshotter(StatsRegistry& registry, MetricsSnapshotterOptions options);
  ~MetricsSnapshotter();

  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Opens the output file (append mode) and spawns the export thread.
  /// IoError when the file cannot be opened.
  Status Start();

  /// Writes one final record, flushes, and joins the thread. Idempotent;
  /// called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Records appended so far (including the final one written by Stop()).
  std::uint64_t records_written() const {
    return records_written_.load(std::memory_order_relaxed);
  }
  const MetricsSnapshotterOptions& options() const { return options_; }

 private:
  void Loop();
  void WriteRecord();

  StatsRegistry& registry_;
  MetricsSnapshotterOptions options_;

  std::mutex mu_;                 // guards stop_requested_ for the cv
  std::condition_variable wake_;
  bool stop_requested_ = false;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> records_written_{0};
  std::ofstream out_;
  StatsSnapshot previous_;
  std::uint64_t seq_ = 0;
  std::thread thread_;
};

}  // namespace paygo

#endif  // PAYGO_OBS_EXPORTER_H_
