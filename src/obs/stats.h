#ifndef PAYGO_OBS_STATS_H_
#define PAYGO_OBS_STATS_H_

/// \file stats.h
/// \brief Process-wide registry of named counters, gauges, and latency
/// histograms.
///
/// Everything here is plain atomics with relaxed ordering — metrics are
/// monitoring data, not synchronization, and must never serialize the hot
/// paths they observe. The registry hands out stable pointers: call sites
/// cache them in function-local statics so the steady-state cost of a
/// metric update is one relaxed atomic RMW, with no lock and no map
/// lookup. `ResetForTest()` zeroes values but never deallocates, so cached
/// pointers stay valid for the life of the process.
///
/// Dumps come in three formats: `ToText()` for humans, `ToJson()` for
/// tooling, and `ToPrometheus()` in Prometheus exposition format (names
/// are sanitized `[a-zA-Z0-9_]`; histograms expand to cumulative
/// `_bucket{le=...}` series plus `_sum` / `_count`).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace paygo {

/// \brief Monotone counter. Thread-safe; Add is wait-free.
class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Zeroes the counter (test/bench aid, not for production paths).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// \brief Point-in-time signed value. Thread-safe; Set/Add are wait-free.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// \brief Fixed-bucket latency histogram (microseconds, power-of-two
/// bucket bounds). Thread-safe; Record is wait-free.
///
/// Promoted out of `src/serve` so every subsystem shares one
/// implementation; `serve/server_metrics.h` re-exports it.
class LatencyHistogram {
 public:
  /// Bucket i covers (2^(i-1), 2^i] microseconds; bucket 0 is [0, 1].
  /// The last bucket absorbs everything above kOverflowBoundMicros / 2.
  static constexpr std::size_t kNumBuckets = 23;

  /// Inclusive upper bound of the overflow bucket: 2^22 us (~4.2 s).
  /// Percentile queries saturate here — samples slower than this are
  /// indistinguishable from exactly this bound.
  static constexpr std::uint64_t kOverflowBoundMicros = std::uint64_t{1}
                                                        << (kNumBuckets - 1);

  void Record(std::uint64_t micros);
  /// Record() plus a last-seen exemplar: a nonzero \p trace_id overwrites
  /// the landing bucket's exemplar slot, linking that latency bucket to the
  /// most recent trace that hit it (so a p99 outlier resolves to a fetchable
  /// trace). Hot paths without a trace id keep calling the plain overload —
  /// the exemplar store is one extra relaxed atomic store, taken only here.
  void Record(std::uint64_t micros, std::uint64_t trace_id);

  /// Last-seen trace id for bucket \p i (0 = none recorded yet).
  std::uint64_t ExemplarTraceId(std::size_t i) const {
    return exemplars_[i].load(std::memory_order_relaxed);
  }

  /// Total recorded samples.
  std::uint64_t Count() const;
  /// Sum of recorded latencies in microseconds.
  std::uint64_t SumMicros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  /// Mean latency in microseconds (0 when empty).
  double MeanMicros() const;

  /// Approximate percentile in microseconds: the inclusive upper bound of
  /// the bucket containing the p-th sample (p clamped to [0, 1]). 0 when
  /// empty. p = 1.0 returns the bound of the highest non-empty bucket,
  /// which is kOverflowBoundMicros when any sample landed in the overflow
  /// bucket — the true maximum may be larger.
  std::uint64_t PercentileMicros(double p) const;

  /// Per-bucket count (for tests and dumps).
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket \p i in microseconds.
  static std::uint64_t BucketUpperMicros(std::size_t i);

  /// Zeroes all buckets and the sum (test/bench aid; racing Record()s may
  /// survive partially).
  void Reset();

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> exemplars_[kNumBuckets] = {};
  std::atomic<std::uint64_t> sum_micros_{0};
};

/// \brief Point-in-time summary of one LatencyHistogram.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  double mean_us = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
};

/// Samples \p h once per field (individually consistent, not atomic across
/// fields — fine for monitoring).
HistogramSummary SummarizeHistogram(const LatencyHistogram& h);

/// The single histogram-JSON shape every dump uses — StatsRegistry::ToJson,
/// ServerMetrics::ToJson, the JSONL exporter — so the formats cannot drift:
/// `{"count": C, "sum_us": S, "mean_us": M, "p50_us": …, "p95_us": …,
/// "p99_us": …, "exemplars": {"<bucket_le_us>": <trace_id>, …}}` where
/// `exemplars` lists only buckets whose last-seen trace id is nonzero
/// (empty object when the histogram never saw a traced sample).
std::string HistogramSummaryJson(const LatencyHistogram& h);

/// Human-readable one-liner: `count=N mean=Mus p50=…us p95=…us p99=…us`.
std::string HistogramSummaryText(const LatencyHistogram& h);

/// Sanitizes a metric name to the Prometheus charset `[a-zA-Z0-9_]` ('.'
/// and '-' become '_'; a leading digit gets a '_' prefix).
std::string PrometheusMetricName(const std::string& name);

/// Appends the full Prometheus exposition of \p h under the already
/// sanitized name \p pname: the cumulative `_bucket{le="…"}` series (ending
/// with `le="+Inf"`), then `_sum` and `_count`. `_count` equals the +Inf
/// bucket by construction, so exposition stays self-consistent even against
/// concurrent Record() calls.
void AppendPrometheusHistogram(std::ostream& os, const std::string& pname,
                               const LatencyHistogram& h);

/// \brief Point-in-time copy of every registered metric, keyed by name.
/// This is the exporter's input: counters diff cleanly between snapshots
/// because they are monotone.
struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

/// \brief Process-wide map of named metrics.
///
/// Get*() registers on first use and returns a pointer that stays valid
/// (and keeps its identity) forever — cache it:
///
/// \code
///   static Counter* merges = StatsRegistry::Global().GetCounter(
///       "paygo.hac.merges");
///   merges->Add(1);
/// \endcode
///
/// Names are dotted lowercase (`paygo.<subsystem>.<metric>`). Calling a
/// Get*() twice with the same name returns the same pointer; requesting an
/// existing name as a different metric kind aborts (programming error).
class StatsRegistry {
 public:
  /// The process-wide instance. Separate instances are possible for tests.
  static StatsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// One `name value` (or histogram summary) per line, sorted by name.
  std::string ToText() const;
  /// Single JSON object keyed by metric name; histograms expand to
  /// {count, sum_us, mean_us, p50_us, p95_us, p99_us}.
  std::string ToJson() const;
  /// Prometheus exposition format ('.' and '-' in names become '_').
  std::string ToPrometheus() const;
  /// Copies every registered metric's current value (exporter input).
  StatsSnapshot Snapshot() const;

  /// Zeroes every registered metric's value. Never deallocates — pointers
  /// handed out by Get*() remain valid and registered.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace paygo

#endif  // PAYGO_OBS_STATS_H_
