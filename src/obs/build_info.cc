#include "obs/build_info.h"

#include <sstream>

#include "util/bitset.h"

#ifndef PAYGO_BUILD_SANITIZER
#define PAYGO_BUILD_SANITIZER ""
#endif
#ifndef PAYGO_BUILD_TYPE
#define PAYGO_BUILD_TYPE ""
#endif
#ifndef PAYGO_BUILD_CXX_FLAGS
#define PAYGO_BUILD_CXX_FLAGS ""
#endif

namespace paygo {

namespace {

const char* CompilerString() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* info = [] {
    auto* b = new BuildInfo();
    b->kernel = DynamicBitset::KernelName();
#if defined(PAYGO_TRACING_DISABLED)
    b->tracing_compiled = false;
#else
    b->tracing_compiled = true;
#endif
    b->sanitizer = PAYGO_BUILD_SANITIZER;
#if defined(PAYGO_BUILD_NATIVE_ARCH)
    b->native_arch = true;
#else
    b->native_arch = false;
#endif
    b->build_type = PAYGO_BUILD_TYPE;
    b->compiler = CompilerString();
    b->cxx_flags = PAYGO_BUILD_CXX_FLAGS;
    return b;
  }();
  return *info;
}

std::string BuildInfoJson() {
  const BuildInfo& b = GetBuildInfo();
  std::ostringstream os;
  os << "{\"kernel\": \"" << JsonEscape(b.kernel) << "\""
     << ", \"tracing_compiled\": " << (b.tracing_compiled ? "true" : "false")
     << ", \"sanitizer\": \"" << JsonEscape(b.sanitizer) << "\""
     << ", \"native_arch\": " << (b.native_arch ? "true" : "false")
     << ", \"build_type\": \"" << JsonEscape(b.build_type) << "\""
     << ", \"compiler\": \"" << JsonEscape(b.compiler) << "\""
     << ", \"cxx_flags\": \"" << JsonEscape(b.cxx_flags) << "\"}";
  return os.str();
}

std::string BuildInfoText() {
  const BuildInfo& b = GetBuildInfo();
  std::ostringstream os;
  os << "paygo build info\n"
     << "  bitset kernel: " << b.kernel << "\n"
     << "  tracing compiled: " << (b.tracing_compiled ? "yes" : "no") << "\n"
     << "  sanitizer: " << (b.sanitizer.empty() ? "(none)" : b.sanitizer)
     << "\n"
     << "  native arch: " << (b.native_arch ? "yes" : "no") << "\n"
     << "  build type: " << (b.build_type.empty() ? "(unset)" : b.build_type)
     << "\n"
     << "  compiler: " << b.compiler << "\n"
     << "  cxx flags: " << (b.cxx_flags.empty() ? "(none)" : b.cxx_flags)
     << "\n";
  return os.str();
}

}  // namespace paygo
