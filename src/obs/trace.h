#ifndef PAYGO_OBS_TRACE_H_
#define PAYGO_OBS_TRACE_H_

/// \file trace.h
/// \brief Library-wide scoped tracing spans with Chrome-trace JSON export.
///
/// Every subsystem (clustering, classification, mediation, query answering,
/// serving) marks its stages with `PAYGO_TRACE_SPAN("name")`. A span is an
/// RAII object on a thread-local span stack: construction notes the start
/// time and nesting depth, destruction writes one *complete* event into a
/// lock-free per-thread ring buffer. `Tracer::ExportChromeTrace()` collects
/// every thread's ring into a Chrome trace-event JSON array that loads
/// directly in Perfetto / chrome://tracing (`"ph":"X"` events nest by
/// timestamp within a thread track).
///
/// Cost model (the contract the rest of the library is written against):
///  * `PAYGO_TRACING=OFF` (CMake option) defines `PAYGO_TRACING_DISABLED`
///    and every `PAYGO_TRACE_SPAN` compiles to nothing.
///  * Compiled in but idle (runtime `Tracer::Enable()` not called): one
///    relaxed atomic load + branch per span site; no clock reads, no TLS
///    ring touched. `bench/perf_obs_overhead` bounds this at <2% on the
///    clustering workload.
///  * Recording: two steady-clock reads plus a handful of relaxed stores
///    into the calling thread's ring (no locks, no allocation after the
///    ring exists).
///
/// Concurrency: each ring is written only by its owning thread. Readers
/// (export) may run concurrently with writers; every slot carries a
/// sequence number published with release ordering, and the reader
/// re-checks it after copying the payload, discarding slots that were
/// overwritten mid-read. All slot fields are relaxed atomics, so the race
/// is benign by construction (and TSan-clean) — a torn slot is dropped,
/// never exported.
///
/// Span names must be string literals (or otherwise have static storage
/// duration): rings store the pointer, not a copy.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace paygo {

/// \brief One finished span as stored in a ring / returned by snapshots.
struct TraceEvent {
  const char* name = nullptr;   ///< Static string; null = empty slot.
  std::uint64_t start_us = 0;   ///< Microseconds since the trace epoch.
  std::uint64_t dur_us = 0;     ///< Span duration in microseconds.
  std::uint64_t trace_id = 0;   ///< Request correlation id; 0 = none.
  std::uint32_t tid = 0;        ///< Small sequential thread id.
  std::uint32_t depth = 0;      ///< Nesting depth at completion time.
};

/// \brief A span copied into a same-thread SpanCollector (no tid needed —
/// collectors are strictly thread-local).
struct CollectedSpan {
  const char* name = nullptr;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t depth = 0;
};

/// \brief Fixed-capacity single-writer ring of finished spans.
///
/// The owning thread appends; any thread may Snapshot() concurrently.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 8192;

  explicit TraceRing(std::uint32_t tid) : tid_(tid) {}

  /// Owning thread only.
  void Append(const char* name, std::uint64_t start_us, std::uint64_t dur_us,
              std::uint64_t trace_id, std::uint32_t depth);

  /// Copies the currently retained events (oldest first). Safe against a
  /// concurrent writer: slots overwritten mid-copy are dropped.
  std::vector<TraceEvent> Snapshot() const;

  /// Drops all retained events (racing appends may survive; test aid).
  void Clear();

  std::uint32_t tid() const { return tid_; }
  /// Total events ever appended (monotone; wraparound does not reset it).
  std::uint64_t total_appended() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{kEmpty};  // absolute event index
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start_us{0};
    std::atomic<std::uint64_t> dur_us{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint32_t> depth{0};
  };
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  const std::uint32_t tid_;
  std::atomic<std::uint64_t> head_{0};  // next absolute index to write
  Slot slots_[kCapacity];
};

/// \brief Same-thread capture of every span finished while in scope.
///
/// Installs itself as the calling thread's collector (saving any outer
/// one); the serve runtime uses this to attach a span breakdown to each
/// request for the slow-query log. Collection happens in addition to ring
/// recording and only while tracing is enabled.
class SpanCollector {
 public:
  SpanCollector();
  ~SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  const std::vector<CollectedSpan>& spans() const { return spans_; }
  std::vector<CollectedSpan> TakeSpans() { return std::move(spans_); }

  void Add(const CollectedSpan& span) { spans_.push_back(span); }

 private:
  std::vector<CollectedSpan> spans_;
  SpanCollector* previous_;
};

/// \brief Process-wide tracing control, clock, and export.
class Tracer {
 public:
  /// Runtime switches. Spans started while disabled record nothing.
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the process trace epoch (first use of the tracer).
  static std::uint64_t NowMicros();

  /// Fresh nonzero request-correlation id.
  static std::uint64_t NextTraceId();
  /// Sets / reads the calling thread's current trace id; spans recorded on
  /// this thread are tagged with it. 0 clears.
  static void SetCurrentTraceId(std::uint64_t id);
  static std::uint64_t CurrentTraceId();

  /// Records an already-measured complete event (e.g. a queue wait whose
  /// start predates the worker picking the request up). Same routing as a
  /// span destructor: ring + active collector; no-op while disabled.
  static void RecordComplete(const char* name, std::uint64_t start_us,
                             std::uint64_t dur_us);

  /// Chrome trace-event JSON: a single array of "ph":"X" events across all
  /// threads that ever recorded, sorted by start time. Valid input for
  /// Perfetto and chrome://tracing. A nonzero \p trace_id_filter keeps only
  /// events tagged with that request-correlation id.
  static std::string ExportChromeTrace(std::uint64_t trace_id_filter = 0);
  /// ExportChromeTrace() to a file.
  static Status WriteChromeTrace(const std::string& path);

  /// Raw snapshot of every retained event across all rings, sorted by
  /// (start_us, tid). A nonzero \p trace_id_filter keeps only events tagged
  /// with that id. This is the fetch surface the shard layer serializes over
  /// the wire (`kTraceFetch`).
  static std::vector<TraceEvent> SnapshotEvents(
      std::uint64_t trace_id_filter = 0);

  /// Sum of events currently retained across all rings (test/bench aid).
  static std::uint64_t RetainedEventCount();
  /// Clears every registered ring (test/bench aid; do not race recording
  /// threads if exact emptiness matters).
  static void ClearAll();

 private:
  friend class ScopedSpan;
  friend class SpanCollector;

  struct ThreadState;
  static ThreadState& Tls();

  static std::atomic<bool> enabled_;
};

/// \brief RAII adoption of a trace id on the calling thread.
///
/// Construction saves the thread's current trace id and installs \p
/// trace_id; destruction restores the saved id. Pooled threads (admin
/// handler pool, `ShardService` request threads) wrap each request in one
/// of these so a stale id can never leak into the next request's spans or
/// slow-log entries. Nests correctly: inner scopes restore what the outer
/// scope installed.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::uint64_t trace_id)
      : previous_(Tracer::CurrentTraceId()) {
    Tracer::SetCurrentTraceId(trace_id);
  }
  ~ScopedTraceContext() { Tracer::SetCurrentTraceId(previous_); }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  std::uint64_t previous() const { return previous_; }

 private:
  std::uint64_t previous_;
};

/// \brief RAII span. Prefer the PAYGO_TRACE_SPAN macro.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_us_ = 0;
  bool active_;
};

}  // namespace paygo

#define PAYGO_TRACE_CONCAT_INNER(a, b) a##b
#define PAYGO_TRACE_CONCAT(a, b) PAYGO_TRACE_CONCAT_INNER(a, b)

#if defined(PAYGO_TRACING_DISABLED)
#define PAYGO_TRACE_SPAN(name) \
  do {                         \
  } while (false)
#else
/// Opens a scoped span named \p name (a string literal) that closes at the
/// end of the enclosing block.
#define PAYGO_TRACE_SPAN(name) \
  ::paygo::ScopedSpan PAYGO_TRACE_CONCAT(paygo_trace_span_, __LINE__)(name)
#endif

#endif  // PAYGO_OBS_TRACE_H_
