#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>

namespace paygo {

namespace {

using Clock = std::chrono::steady_clock;

/// Registry of every thread's ring. Threads register on first recording;
/// the shared_ptr keeps a ring exportable after its thread exits.
struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceRing>> rings;
  std::uint32_t next_tid = 1;

  static RingRegistry& Get() {
    static RingRegistry* registry = new RingRegistry();
    return *registry;
  }

  std::shared_ptr<TraceRing> Register() {
    std::lock_guard<std::mutex> lock(mu);
    auto ring = std::make_shared<TraceRing>(next_tid++);
    rings.push_back(ring);
    return ring;
  }

  std::vector<std::shared_ptr<TraceRing>> All() {
    std::lock_guard<std::mutex> lock(mu);
    return rings;
  }
};

Clock::time_point TraceEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::atomic<std::uint64_t> g_next_trace_id{1};

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

// ---------------------------------------------------------------- TraceRing

void TraceRing::Append(const char* name, std::uint64_t start_us,
                       std::uint64_t dur_us, std::uint64_t trace_id,
                       std::uint32_t depth) {
  const std::uint64_t index = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[index % kCapacity];
  // Invalidate the slot first so a concurrent reader cannot mistake a
  // half-written payload for the previous (valid) event.
  slot.seq.store(kEmpty, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_us.store(start_us, std::memory_order_relaxed);
  slot.dur_us.store(dur_us, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.depth.store(depth, std::memory_order_relaxed);
  // Publish: payload happens-before the sequence number readers check.
  slot.seq.store(index, std::memory_order_release);
  head_.store(index + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t begin = head > kCapacity ? head - kCapacity : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t i = begin; i < head; ++i) {
    const Slot& slot = slots_[i % kCapacity];
    if (slot.seq.load(std::memory_order_acquire) != i) continue;
    TraceEvent e;
    e.name = slot.name.load(std::memory_order_relaxed);
    e.start_us = slot.start_us.load(std::memory_order_relaxed);
    e.dur_us = slot.dur_us.load(std::memory_order_relaxed);
    e.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    e.depth = slot.depth.load(std::memory_order_relaxed);
    e.tid = tid_;
    // A writer may have lapped us while we copied; re-check before keeping.
    if (slot.seq.load(std::memory_order_acquire) != i || e.name == nullptr) {
      continue;
    }
    out.push_back(e);
  }
  return out;
}

void TraceRing::Clear() {
  for (Slot& slot : slots_) slot.seq.store(kEmpty, std::memory_order_release);
}

// ----------------------------------------------------------------- Tracer

struct Tracer::ThreadState {
  std::shared_ptr<TraceRing> ring;
  SpanCollector* collector = nullptr;
  std::uint64_t trace_id = 0;
  std::uint32_t depth = 0;

  TraceRing& Ring() {
    if (ring == nullptr) ring = RingRegistry::Get().Register();
    return *ring;
  }
};

Tracer::ThreadState& Tracer::Tls() {
  thread_local ThreadState state;
  return state;
}

std::uint64_t Tracer::NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            TraceEpoch())
          .count());
}

std::uint64_t Tracer::NextTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::SetCurrentTraceId(std::uint64_t id) { Tls().trace_id = id; }

std::uint64_t Tracer::CurrentTraceId() { return Tls().trace_id; }

void Tracer::RecordComplete(const char* name, std::uint64_t start_us,
                            std::uint64_t dur_us) {
  if (!enabled()) return;
  ThreadState& state = Tls();
  state.Ring().Append(name, start_us, dur_us, state.trace_id, state.depth);
  if (state.collector != nullptr) {
    state.collector->Add({name, start_us, dur_us, state.depth});
  }
}

std::vector<TraceEvent> Tracer::SnapshotEvents(std::uint64_t trace_id_filter) {
  std::vector<TraceEvent> events;
  for (const auto& ring : RingRegistry::Get().All()) {
    for (const TraceEvent& e : ring->Snapshot()) {
      if (trace_id_filter != 0 && e.trace_id != trace_id_filter) continue;
      events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.tid < b.tid;
            });
  return events;
}

std::string Tracer::ExportChromeTrace(std::uint64_t trace_id_filter) {
  const std::vector<TraceEvent> events = SnapshotEvents(trace_id_filter);
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\": \"" << e.name << "\", \"ph\": \"X\", \"pid\": 1"
       << ", \"tid\": " << e.tid << ", \"ts\": " << e.start_us
       << ", \"dur\": " << e.dur_us << ", \"args\": {\"trace_id\": "
       << e.trace_id << ", \"depth\": " << e.depth << "}}";
  }
  os << "\n]\n";
  return os.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open trace file " + path);
  out << ExportChromeTrace();
  out.flush();
  if (!out) return Status::IoError("failed writing trace file " + path);
  return Status::OK();
}

std::uint64_t Tracer::RetainedEventCount() {
  std::uint64_t total = 0;
  for (const auto& ring : RingRegistry::Get().All()) {
    total += ring->Snapshot().size();
  }
  return total;
}

void Tracer::ClearAll() {
  for (const auto& ring : RingRegistry::Get().All()) ring->Clear();
}

// ------------------------------------------------------------ SpanCollector

SpanCollector::SpanCollector() {
  Tracer::ThreadState& state = Tracer::Tls();
  previous_ = state.collector;
  state.collector = this;
}

SpanCollector::~SpanCollector() { Tracer::Tls().collector = previous_; }

// --------------------------------------------------------------- ScopedSpan

ScopedSpan::ScopedSpan(const char* name)
    : name_(name), active_(Tracer::enabled()) {
  if (!active_) return;
  ++Tracer::Tls().depth;
  start_us_ = Tracer::NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::uint64_t dur = Tracer::NowMicros() - start_us_;
  Tracer::ThreadState& state = Tracer::Tls();
  const std::uint32_t depth = --state.depth;
  state.Ring().Append(name_, start_us_, dur, state.trace_id, depth);
  if (state.collector != nullptr) {
    state.collector->Add({name_, start_us_, dur, depth});
  }
}

}  // namespace paygo
