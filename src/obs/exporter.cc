#include "obs/exporter.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

namespace paygo {

namespace {

/// Metric names are dotted identifiers today, but escaping keeps the output
/// strict JSON even if someone registers a quote or backslash in a name.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint64_t NowMillis() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

MetricsSnapshotter::MetricsSnapshotter(StatsRegistry& registry,
                                       MetricsSnapshotterOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.interval_ms == 0) options_.interval_ms = 1;
}

MetricsSnapshotter::~MetricsSnapshotter() { Stop(); }

Status MetricsSnapshotter::Start() {
  if (running()) return Status::OK();
  if (options_.path.empty()) {
    return Status::InvalidArgument("exporter path is empty");
  }
  out_.open(options_.path, std::ios::out | std::ios::app);
  if (!out_.is_open()) {
    return Status::IoError("cannot open metrics export file '" +
                           options_.path + "'");
  }
  // The first record diffs against the values at Start(), not zero, so a
  // restarted exporter does not report the process's whole history as one
  // giant delta.
  previous_ = registry_.Snapshot();
  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MetricsSnapshotter::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  // Final record: captures whatever accumulated since the last wake.
  WriteRecord();
  out_.flush();
  out_.close();
  running_.store(false, std::memory_order_release);
}

void MetricsSnapshotter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    const bool stopped = wake_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [&] { return stop_requested_; });
    if (stopped) break;
    lock.unlock();
    WriteRecord();
    lock.lock();
  }
}

void MetricsSnapshotter::WriteRecord() {
  const StatsSnapshot current = registry_.Snapshot();
  std::ostringstream os;
  os << "{\"ts_ms\": " << NowMillis() << ", \"seq\": " << seq_++;

  os << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : current.counters) {
    if (!first) os << ", ";
    first = false;
    const auto prev = previous_.counters.find(name);
    const std::uint64_t before =
        prev == previous_.counters.end() ? 0 : prev->second;
    // Counters are monotone; a value below the previous snapshot means a
    // test reset, which we report as a fresh start rather than underflow.
    const std::uint64_t delta = value >= before ? value - before : value;
    os << "\"" << JsonEscape(name) << "\": {\"value\": " << value
       << ", \"delta\": " << delta << "}";
  }
  os << "}";

  os << ", \"gauges\": {";
  first = true;
  for (const auto& [name, value] : current.gauges) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": " << value;
  }
  os << "}";

  os << ", \"histograms\": {";
  first = true;
  for (const auto& [name, h] : current.histograms) {
    if (!first) os << ", ";
    first = false;
    const auto prev = previous_.histograms.find(name);
    const std::uint64_t before =
        prev == previous_.histograms.end() ? 0 : prev->second.count;
    const std::uint64_t delta = h.count >= before ? h.count - before : h.count;
    os << "\"" << JsonEscape(name) << "\": {\"count\": " << h.count
       << ", \"delta_count\": " << delta << ", \"sum_us\": " << h.sum_us
       << ", \"mean_us\": " << h.mean_us << ", \"p50_us\": " << h.p50_us
       << ", \"p95_us\": " << h.p95_us << ", \"p99_us\": " << h.p99_us << "}";
  }
  os << "}}";

  out_ << os.str() << "\n";
  out_.flush();
  previous_ = current;
  records_written_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace paygo
