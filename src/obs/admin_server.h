#ifndef PAYGO_OBS_ADMIN_SERVER_H_
#define PAYGO_OBS_ADMIN_SERVER_H_

/// \file admin_server.h
/// \brief Embedded, dependency-free admin HTTP/1.1 endpoint.
///
/// The library's in-process telemetry (StatsRegistry, trace rings, the
/// serving runtime's metrics and slow-query log) is useless to an operator
/// if it can only be read with a debugger attached. AdminServer exposes it
/// over plain HTTP using nothing but POSIX sockets: one accept thread
/// multiplexing on `poll`, a bounded handler pool draining accepted
/// connections, request-line + Host parsing only (no chunked bodies, no
/// keep-alive — every response closes the connection), and a hard request
/// cap of `max_request_bytes` (default 1 MiB) so a misbehaving client
/// cannot balloon memory.
///
/// Design constraints, in order:
///  * **Never perturb the serving path.** Handlers run on the admin pool,
///    not the request workers; everything they read is lock-free metric
///    sampling or short registry locks. When the handler pool is saturated
///    the acceptor sheds the connection with an immediate 503 instead of
///    queueing unbounded work — the same admission-control philosophy as
///    the serving queue.
///  * **Dependency-free.** This is monitoring plumbing; pulling in an HTTP
///    library for GET-only plaintext endpoints would invert the cost.
///  * **Graceful Start/Stop.** Stop closes the listener, drains the
///    handler queue (unserved connections are closed), and joins every
///    thread. Safe to call twice; called by the destructor.
///
/// Routing is an exact-path map registered before Start(). The obs-level
/// endpoints (`/metrics`, `/varz`, `/healthz`, `/tracez`) are attached by
/// `RegisterObsEndpoints`; the serving runtime layers `/readyz`,
/// `/statusz`, `/slowz` on top (see serve/admin_endpoints.h). `GET /`
/// serves an index of registered paths.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/bounded_queue.h"
#include "util/status.h"

namespace paygo {

/// \brief The slice of an HTTP request a handler sees. Deliberately
/// minimal: method, split request target, and the Host header.
struct HttpRequest {
  std::string method;  ///< "GET" (anything else is rejected with 405).
  std::string target;  ///< Raw request target, e.g. "/metrics?name=hac".
  std::string path;    ///< Target up to the first '?'.
  std::string query;   ///< Target after the first '?' ("" when absent).
  std::string host;    ///< Host header value ("" when absent).
};

/// \brief What a handler returns; serialized as HTTP/1.1 with
/// Content-Length and Connection: close.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// \brief Tuning knobs. The defaults bind a loopback-only ephemeral port.
struct AdminServerOptions {
  /// TCP port to bind; 0 asks the kernel for an ephemeral port (read it
  /// back via port() after Start()).
  int port = 0;
  /// Bind address. Loopback by default: exposing metrics beyond the host
  /// is a deployment decision, not a library default.
  std::string bind_address = "127.0.0.1";
  /// Fixed handler pool width.
  std::size_t handler_threads = 2;
  /// Accepted connections waiting for a handler beyond this are shed with
  /// an immediate 503.
  std::size_t pending_connections = 16;
  /// Requests larger than this (request line + headers) are answered 413.
  std::size_t max_request_bytes = 1 << 20;
  /// Per-connection socket read/write timeout.
  std::uint64_t io_timeout_ms = 5000;
};

/// \brief The embedded HTTP endpoint. Construct, Handle(...), Start().
class AdminServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit AdminServer(AdminServerOptions options = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers (or replaces) the handler for an exact path. Must be called
  /// before Start() — the route map is immutable while serving.
  void Handle(std::string path, Handler handler);

  /// Binds, listens, and spawns the accept thread + handler pool. Returns
  /// the bound port — with options.port = 0 that is the kernel-chosen
  /// ephemeral port, so multi-process harnesses get a collision-free port
  /// straight from Start() instead of scraping logs. Idempotent while
  /// running (returns the already-bound port). Fails with IoError when the
  /// port cannot be bound.
  Result<std::uint16_t> Start();

  /// Stops accepting, closes queued connections, joins all threads.
  /// Idempotent; called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0 to the kernel-chosen one). Valid
  /// after a successful Start().
  std::uint16_t port() const { return bound_port_; }
  const AdminServerOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  AdminServerOptions options_;
  std::map<std::string, Handler> handlers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::unique_ptr<BoundedQueue<int>> connections_;
  std::thread acceptor_;
  std::vector<std::thread> pool_;
};

/// Registers the library-level observability endpoints on \p admin:
///   /metrics  Prometheus exposition of the global StatsRegistry
///   /varz     the same registry as one JSON object
///   /healthz  liveness: always 200 "ok" while the process serves HTTP
///   /tracez   drains the trace rings as Chrome trace-event JSON;
///             ?trace_id=N keeps only that request's spans
void RegisterObsEndpoints(AdminServer& admin);

/// "key=value&key=value" query-string lookup returning the value of \p key
/// as u64; 0 when absent or non-numeric (0 never names a real trace id, so
/// it doubles as "no filter").
std::uint64_t QueryParamU64(const std::string& query, const std::string& key);

/// Minimal loopback HTTP GET for tests, smoke checks, and demos: connects
/// to 127.0.0.1:\p port, sends `GET target HTTP/1.1`, and returns the raw
/// response (status line, headers, body). Not a general HTTP client.
Result<std::string> AdminHttpGet(std::uint16_t port, const std::string& target,
                                 std::uint64_t timeout_ms = 2000);

}  // namespace paygo

#endif  // PAYGO_OBS_ADMIN_SERVER_H_
