#include "integrate/query_engine.h"

#include <algorithm>

#include "obs/trace.h"

namespace paygo {

Result<std::vector<RankedTuple>> QueryEngine::Answer(
    const StructuredQuery& query) const {
  PAYGO_TRACE_SPAN("query.answer");
  const std::size_t width = mediation_.mediated.size();
  for (const auto& p : query.predicates) {
    if (p.mediated_attribute >= width) {
      return Status::OutOfRange("predicate references mediated attribute " +
                                std::to_string(p.mediated_attribute) +
                                " but the mediated schema has " +
                                std::to_string(width) + " attributes");
    }
  }

  // Final consolidation state per mediated tuple: the running product of
  // (1 - p) over contributions, plus contributing source names.
  struct Consolidated {
    double one_minus_product = 1.0;
    std::vector<std::string> sources;
  };
  std::map<Tuple, Consolidated> result;

  for (std::size_t m = 0; m < mediation_.members.size(); ++m) {
    PAYGO_TRACE_SPAN("query.source_scan");
    const auto& [schema_id, membership] = mediation_.members[m];
    if (schema_id >= sources_.size() || sources_[schema_id] == nullptr) {
      continue;  // no data attached for this member
    }
    const DataSource& source = *sources_[schema_id];
    const ProbabilisticMapping& pm = mediation_.mappings[m];
    const std::size_t src_width = source.schema().attributes.size();

    // Per raw tuple: mapped tuple -> summed Pr(phi) over the alternatives
    // that produced it (mutually exclusive choices; Section 4.4's first
    // consolidation rule).
    std::vector<std::map<Tuple, double>> per_raw;

    for (const AttributeMapping& phi : pm.alternatives) {
      if (phi.target.size() != src_width) continue;  // defensive
      // Translate the query through phi: a predicate on mediated attribute
      // k becomes predicates on every source attribute mapping to k. If no
      // source attribute maps to k, this phi cannot satisfy the predicate.
      std::vector<SourcePredicate> translated;
      bool satisfiable = true;
      for (const auto& p : query.predicates) {
        bool covered = false;
        for (std::size_t a = 0; a < src_width; ++a) {
          if (phi.target[a] == static_cast<int>(p.mediated_attribute)) {
            translated.push_back({a, p.value});
            covered = true;
          }
        }
        if (!covered) {
          satisfiable = false;
          break;
        }
      }
      if (!satisfiable) continue;

      if (per_raw.empty()) per_raw.resize(source.size());
      // Map each matching raw tuple into the mediated schema; raw tuples
      // are identified by position so the same-raw-tuple consolidation
      // rule applies even when a source contains duplicate raw tuples.
      for (const std::size_t raw_idx : source.SelectIndices(translated)) {
        const Tuple& raw = source.tuples()[raw_idx];
        Tuple mapped;
        mapped.values.assign(width, "");
        for (std::size_t a = 0; a < src_width; ++a) {
          if (phi.target[a] >= 0 && a < raw.values.size()) {
            mapped.values[static_cast<std::size_t>(phi.target[a])] =
                raw.values[a];
          }
        }
        per_raw[raw_idx][mapped] += phi.probability;
      }
    }

    // Fold this source's contributions into the global noisy-or state with
    // overall probability Pr(phi-group) * Pr(S_i in D_r).
    for (const auto& raw_map : per_raw) {
      for (const auto& [mapped, phi_prob] : raw_map) {
        const double p = phi_prob * membership;
        Consolidated& c = result[mapped];
        c.one_minus_product *= (1.0 - p);
        if (std::find(c.sources.begin(), c.sources.end(),
                      source.schema().source_name) == c.sources.end()) {
          c.sources.push_back(source.schema().source_name);
        }
      }
    }
  }

  PAYGO_TRACE_SPAN("query.consolidate");
  std::vector<RankedTuple> out;
  out.reserve(result.size());
  for (auto& [tuple, c] : result) {
    RankedTuple rt;
    rt.tuple = tuple;
    rt.probability = 1.0 - c.one_minus_product;
    rt.sources = std::move(c.sources);
    out.push_back(std::move(rt));
  }
  std::sort(out.begin(), out.end(),
            [](const RankedTuple& a, const RankedTuple& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.tuple < b.tuple;
            });
  return out;
}

}  // namespace paygo
