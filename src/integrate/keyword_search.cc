#include "integrate/keyword_search.h"

#include <algorithm>

#include "util/string_util.h"

namespace paygo {
namespace {

/// True when \p keyword occurs (case-insensitively) inside any value of
/// \p tuple.
bool TupleMatchesKeyword(const Tuple& tuple, const std::string& keyword) {
  for (const std::string& value : tuple.values) {
    if (value.empty()) continue;
    if (ToLowerAscii(value).find(keyword) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

Result<std::vector<KeywordHit>> SearchDomainTuples(
    std::uint32_t domain, double domain_posterior,
    const DomainMediation& mediation,
    const std::vector<const DataSource*>& sources_by_schema,
    const std::vector<std::string>& keywords,
    const KeywordSearchOptions& options) {
  if (domain_posterior < 0.0 || domain_posterior > 1.0 + 1e-9) {
    return Status::InvalidArgument("domain_posterior must be in [0, 1]");
  }
  if (options.value_match_boost < 0.0) {
    return Status::InvalidArgument("value_match_boost must be >= 0");
  }
  QueryEngine engine(mediation, sources_by_schema);
  PAYGO_ASSIGN_OR_RETURN(std::vector<RankedTuple> tuples, engine.Answer({}));

  std::vector<std::string> lowered;
  lowered.reserve(keywords.size());
  for (const std::string& k : keywords) lowered.push_back(ToLowerAscii(k));

  std::vector<KeywordHit> hits;
  hits.reserve(tuples.size());
  for (RankedTuple& t : tuples) {
    KeywordHit hit;
    hit.domain = domain;
    hit.tuple_probability = t.probability;
    for (const std::string& k : lowered) {
      if (!k.empty() && TupleMatchesKeyword(t.tuple, k)) ++hit.value_matches;
    }
    const double matched_fraction =
        lowered.empty() ? 0.0
                        : static_cast<double>(hit.value_matches) /
                              static_cast<double>(lowered.size());
    const double boost = (1.0 + options.value_match_boost * matched_fraction) /
                         (1.0 + options.value_match_boost);
    hit.score = domain_posterior * t.probability * boost;
    hit.tuple = std::move(t.tuple);
    hit.sources = std::move(t.sources);
    hits.push_back(std::move(hit));
  }
  std::sort(hits.begin(), hits.end(),
            [](const KeywordHit& a, const KeywordHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.domain != b.domain) return a.domain < b.domain;
              return a.tuple < b.tuple;
            });
  if (hits.size() > options.max_hits) hits.resize(options.max_hits);
  return hits;
}

std::vector<KeywordHit> MergeKeywordHits(
    std::vector<std::vector<KeywordHit>> per_domain, std::size_t max_hits) {
  std::vector<KeywordHit> all;
  for (auto& hits : per_domain) {
    all.insert(all.end(), std::make_move_iterator(hits.begin()),
               std::make_move_iterator(hits.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const KeywordHit& a, const KeywordHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.domain != b.domain) return a.domain < b.domain;
              return a.tuple < b.tuple;
            });
  if (all.size() > max_hits) all.resize(max_hits);
  return all;
}

}  // namespace paygo
