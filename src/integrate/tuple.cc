#include "integrate/tuple.h"

// Tuple and RankedTuple are plain aggregates; behaviour lives in
// QueryEngine. This translation unit anchors the build target.
