#ifndef PAYGO_INTEGRATE_DATA_SOURCE_H_
#define PAYGO_INTEGRATE_DATA_SOURCE_H_

/// \file data_source.h
/// \brief An in-memory structured data source behind a schema.
///
/// Stands in for a deep-web form endpoint or a spreadsheet: it holds raw
/// tuples aligned to its schema and answers simple selection queries. The
/// thesis never surfaces sources' data for clustering — only the runtime of
/// Section 4.4 touches tuples.

#include <cstdint>
#include <string>
#include <vector>

#include "integrate/tuple.h"
#include "schema/schema.h"
#include "util/status.h"

namespace paygo {

/// \brief A selection predicate on a source attribute: value equality,
/// case-insensitive.
struct SourcePredicate {
  std::size_t attribute = 0;
  std::string value;
};

/// \brief A queryable in-memory data source.
class DataSource {
 public:
  /// Creates a source for \p schema (copied); \p schema_id is the corpus
  /// index the source's schema occupies.
  DataSource(std::uint32_t schema_id, Schema schema)
      : schema_id_(schema_id), schema_(std::move(schema)) {}

  /// Appends a raw tuple; its width must match the schema's attribute
  /// count.
  Status AddTuple(Tuple tuple);

  /// All raw tuples satisfying every predicate (conjunctive selection).
  std::vector<Tuple> Select(
      const std::vector<SourcePredicate>& predicates) const;

  /// Indices of all raw tuples satisfying every predicate.
  std::vector<std::size_t> SelectIndices(
      const std::vector<SourcePredicate>& predicates) const;

  std::uint32_t schema_id() const { return schema_id_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::size_t size() const { return tuples_.size(); }

 private:
  std::uint32_t schema_id_;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace paygo

#endif  // PAYGO_INTEGRATE_DATA_SOURCE_H_
