#ifndef PAYGO_INTEGRATE_TUPLE_H_
#define PAYGO_INTEGRATE_TUPLE_H_

/// \file tuple.h
/// \brief Raw and mapped tuples (Section 4.4 terminology).
///
/// A raw tuple is aligned to its source schema's attribute order; a mapped
/// tuple is aligned to a mediated schema, with empty strings for mediated
/// attributes the mapping left unpopulated.

#include <string>
#include <vector>

namespace paygo {

/// \brief A tuple: one value per attribute position (empty = null).
struct Tuple {
  std::vector<std::string> values;

  Tuple() = default;
  explicit Tuple(std::vector<std::string> v) : values(std::move(v)) {}

  bool operator==(const Tuple& other) const { return values == other.values; }
  bool operator<(const Tuple& other) const { return values < other.values; }
};

/// \brief A mediated-schema tuple in the final result set R_all, carrying
/// the consolidated probability of Section 4.4.
struct RankedTuple {
  /// Values aligned to the mediated schema.
  Tuple tuple;
  /// Consolidated probability: per source, Pr(phi) * Pr(S_i in D_r), then
  /// noisy-or across duplicates.
  double probability = 0.0;
  /// Names of the data sources that contributed this tuple.
  std::vector<std::string> sources;
};

}  // namespace paygo

#endif  // PAYGO_INTEGRATE_TUPLE_H_
