#ifndef PAYGO_INTEGRATE_KEYWORD_SEARCH_H_
#define PAYGO_INTEGRATE_KEYWORD_SEARCH_H_

/// \file keyword_search.h
/// \brief End-to-end keyword search over structured data (Section 1.1).
///
/// The thesis's motivating query "departure Toronto destination Cairo"
/// mixes two kinds of keywords: attribute-like terms (departure,
/// destination) that the classifier uses to find relevant domains, and
/// value-like terms (Toronto, Cairo) that should match the DATA. The
/// thesis's architecture stops at presenting the ranked mediated-schema
/// interfaces and letting the user pose a structured query; this module
/// closes the loop for the impatient user: it retrieves tuples from the
/// top domains directly and scores them by
///
///   domain posterior (normalized over the consulted domains)
///   x consolidated tuple probability (Section 4.4)
///   x value-match boost (fraction of keywords found among the tuple's
///     values, so "Toronto" actually pulls Toronto rows up).

#include <cstdint>
#include <string>
#include <vector>

#include "integrate/data_source.h"
#include "integrate/query_engine.h"
#include "mediate/mediator.h"
#include "util/status.h"

namespace paygo {

/// \brief One keyword-search answer.
struct KeywordHit {
  /// Domain the tuple came from.
  std::uint32_t domain = 0;
  /// The mediated tuple (aligned to that domain's mediated schema).
  Tuple tuple;
  /// Combined score (see file comment); in (0, 1].
  double score = 0.0;
  /// Consolidated tuple probability before domain/value weighting.
  double tuple_probability = 0.0;
  /// How many query keywords matched the tuple's values.
  std::size_t value_matches = 0;
  std::vector<std::string> sources;
};

/// \brief Options of keyword-over-tuples search.
struct KeywordSearchOptions {
  /// How many top-ranked domains to retrieve tuples from.
  std::size_t domains_to_consult = 3;
  /// Cap on returned hits.
  std::size_t max_hits = 20;
  /// Weight of the value-match boost: score multiplier is
  /// (1 + boost * matched_fraction) / (1 + boost).
  double value_match_boost = 4.0;
};

/// \brief Searches tuples of one domain for the query keywords.
///
/// \p domain_posterior is the (normalized) classifier posterior of the
/// domain for this query; \p keywords are the canonicalized query terms.
/// Tuples are fetched with an unconstrained structured query and scored.
Result<std::vector<KeywordHit>> SearchDomainTuples(
    std::uint32_t domain, double domain_posterior,
    const DomainMediation& mediation,
    const std::vector<const DataSource*>& sources_by_schema,
    const std::vector<std::string>& keywords,
    const KeywordSearchOptions& options = {});

/// Merges per-domain hit lists into one ranking (descending score, ties by
/// domain then tuple), truncated to max_hits.
std::vector<KeywordHit> MergeKeywordHits(
    std::vector<std::vector<KeywordHit>> per_domain, std::size_t max_hits);

}  // namespace paygo

#endif  // PAYGO_INTEGRATE_KEYWORD_SEARCH_H_
