#include "integrate/data_source.h"

#include "util/string_util.h"

namespace paygo {

Status DataSource::AddTuple(Tuple tuple) {
  if (tuple.values.size() != schema_.attributes.size()) {
    return Status::InvalidArgument(
        "tuple width " + std::to_string(tuple.values.size()) +
        " does not match schema width " +
        std::to_string(schema_.attributes.size()));
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

std::vector<std::size_t> DataSource::SelectIndices(
    const std::vector<SourcePredicate>& predicates) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    bool match = true;
    for (const SourcePredicate& p : predicates) {
      if (p.attribute >= t.values.size() ||
          ToLowerAscii(t.values[p.attribute]) != ToLowerAscii(p.value)) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(i);
  }
  return out;
}

std::vector<Tuple> DataSource::Select(
    const std::vector<SourcePredicate>& predicates) const {
  std::vector<Tuple> out;
  for (std::size_t i : SelectIndices(predicates)) out.push_back(tuples_[i]);
  return out;
}

}  // namespace paygo
