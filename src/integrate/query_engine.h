#ifndef PAYGO_INTEGRATE_QUERY_ENGINE_H_
#define PAYGO_INTEGRATE_QUERY_ENGINE_H_

/// \file query_engine.h
/// \brief Structured-query answering over one domain (Section 4.4).
///
/// A structured query posed over a domain's mediated schema is dispatched
/// to every member data source: per alternative mapping phi, the query's
/// predicates are translated to source attributes, matching raw tuples are
/// retrieved and mapped into mediated tuples with probability
/// Pr(phi) * Pr(S_i in D_r). Identical mapped tuples from the same raw
/// tuple are consolidated by summing (they are mutually exclusive mapping
/// choices); identical tuples from different raw tuples / sources are
/// consolidated with the noisy-or rule 1 - prod(1 - p).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "integrate/data_source.h"
#include "integrate/tuple.h"
#include "mediate/mediator.h"
#include "util/status.h"

namespace paygo {

/// \brief A conjunctive equality query over a mediated schema.
struct StructuredQuery {
  struct Predicate {
    /// Mediated attribute index.
    std::size_t mediated_attribute = 0;
    /// Required value (case-insensitive equality).
    std::string value;
  };
  std::vector<Predicate> predicates;
};

/// \brief Answers structured queries over one domain.
class QueryEngine {
 public:
  /// \p mediation describes the domain; \p sources are the attached data
  /// sources, indexed by corpus schema id (sources for schemas outside the
  /// domain are ignored; domain members without a source contribute no
  /// tuples).
  QueryEngine(const DomainMediation& mediation,
              const std::vector<const DataSource*>& sources_by_schema)
      : mediation_(mediation), sources_(sources_by_schema) {}

  /// Runs \p query; returns mediated tuples sorted descending by
  /// consolidated probability (ties broken by tuple values).
  Result<std::vector<RankedTuple>> Answer(const StructuredQuery& query) const;

 private:
  const DomainMediation& mediation_;
  std::vector<const DataSource*> sources_;
};

}  // namespace paygo

#endif  // PAYGO_INTEGRATE_QUERY_ENGINE_H_
