#include "eval/classification_metrics.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

std::vector<DomainScore> Ranking(std::initializer_list<std::uint32_t> order) {
  std::vector<DomainScore> r;
  double score = 0.0;
  for (std::uint32_t d : order) r.push_back({d, score -= 1.0});
  return r;
}

const std::vector<std::vector<std::string>> kDomainLabels = {
    {"cars"}, {"movies"}, {"hotels"}, {}, {"cars", "movies"}};

TEST(TopKTest, HitAtKFindsTargetWithinPrefix) {
  const auto r = Ranking({1, 0, 2});
  EXPECT_TRUE(TopKAccumulator::HitAtK(r, kDomainLabels, "movies", 1));
  EXPECT_FALSE(TopKAccumulator::HitAtK(r, kDomainLabels, "cars", 1));
  EXPECT_TRUE(TopKAccumulator::HitAtK(r, kDomainLabels, "cars", 2));
  EXPECT_TRUE(TopKAccumulator::HitAtK(r, kDomainLabels, "hotels", 3));
  EXPECT_FALSE(TopKAccumulator::HitAtK(r, kDomainLabels, "plants", 3));
}

TEST(TopKTest, KLargerThanRankingIsSafe) {
  const auto r = Ranking({0});
  EXPECT_TRUE(TopKAccumulator::HitAtK(r, kDomainLabels, "cars", 10));
  EXPECT_FALSE(TopKAccumulator::HitAtK({}, kDomainLabels, "cars", 3));
}

TEST(TopKTest, DomainsWithMultipleLabelsMatchAny) {
  const auto r = Ranking({4});
  EXPECT_TRUE(TopKAccumulator::HitAtK(r, kDomainLabels, "cars", 1));
  EXPECT_TRUE(TopKAccumulator::HitAtK(r, kDomainLabels, "movies", 1));
}

TEST(TopKTest, NonHomogeneousDomainNeverMatches) {
  const auto r = Ranking({3});
  EXPECT_FALSE(TopKAccumulator::HitAtK(r, kDomainLabels, "cars", 1));
}

TEST(TopKTest, AccumulatorFractions) {
  TopKAccumulator acc;
  acc.Record(Ranking({0, 1, 2}), kDomainLabels, "cars");    // top-1 hit
  acc.Record(Ranking({1, 0, 2}), kDomainLabels, "cars");    // top-3 hit only
  acc.Record(Ranking({1, 2, 3}), kDomainLabels, "cars");    // miss
  acc.Record(Ranking({2, 3, 0}), kDomainLabels, "cars");    // top-3 hit only
  EXPECT_EQ(acc.num_queries(), 4u);
  EXPECT_DOUBLE_EQ(acc.Top1Fraction(), 0.25);
  EXPECT_DOUBLE_EQ(acc.Top3Fraction(), 0.75);
}

TEST(TopKTest, EmptyAccumulatorIsZero) {
  TopKAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Top1Fraction(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Top3Fraction(), 0.0);
}

TEST(TopKTest, OutOfRangeDomainIdIgnored) {
  std::vector<DomainScore> r = {{99, -1.0}};
  EXPECT_FALSE(TopKAccumulator::HitAtK(r, kDomainLabels, "cars", 1));
}

}  // namespace
}  // namespace paygo
