#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace paygo {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);  // hardware concurrency
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
}

TEST(ThreadPoolTest, WidthOneSpawnsNoThreadsAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(0, 100, 1, [&](const ThreadPool::Chunk& c) {
    if (c.begin == 0) ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
  auto f = pool.Submit([] { return std::this_thread::get_id(); });
  EXPECT_EQ(f.get(), caller);
}

TEST(ThreadPoolTest, NumChunksPartition) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumChunks(0, 16), 0u);   // empty range
  EXPECT_EQ(pool.NumChunks(1, 16), 1u);   // range smaller than grain
  EXPECT_EQ(pool.NumChunks(16, 16), 1u);  // exactly one grain
  EXPECT_EQ(pool.NumChunks(17, 16), 2u);  // ceil division
  // Large ranges cap at width * kChunksPerThread.
  EXPECT_EQ(pool.NumChunks(1u << 20, 1), 4 * ThreadPool::kChunksPerThread);
  // The cap depends on the width, so the partition is a function of
  // (size, grain, width) only — never of timing.
  ThreadPool pool2(2);
  EXPECT_EQ(pool2.NumChunks(1u << 20, 1), 2 * ThreadPool::kChunksPerThread);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  bool invoked = false;
  pool.ParallelFor(10, 10, 1, [&](const ThreadPool::Chunk&) {
    invoked = true;
  });
  pool.ParallelFor(10, 5, 1, [&](const ThreadPool::Chunk&) {
    invoked = true;  // begin > end is treated as empty, not as wraparound
  });
  EXPECT_FALSE(invoked);
}

// Chunks must form an ordered contiguous partition of [begin, end): every
// index covered exactly once, chunk k ends where chunk k+1 begins.
void CheckPartition(std::size_t width, std::size_t begin, std::size_t end,
                    std::size_t grain) {
  ThreadPool pool(width);
  const std::size_t chunks = pool.NumChunks(end - begin, grain);
  std::vector<std::pair<std::size_t, std::size_t>> bounds(chunks);
  std::vector<std::atomic<std::uint32_t>> touched(end - begin);
  for (auto& t : touched) t.store(0);
  pool.ParallelFor(begin, end, grain, [&](const ThreadPool::Chunk& c) {
    ASSERT_LT(c.index, chunks);
    bounds[c.index] = {c.begin, c.end};
    for (std::size_t i = c.begin; i < c.end; ++i) {
      touched[i - begin].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1u) << "index " << begin + i;
  }
  std::size_t expect_begin = begin;
  for (std::size_t k = 0; k < chunks; ++k) {
    EXPECT_EQ(bounds[k].first, expect_begin) << "chunk " << k;
    EXPECT_GT(bounds[k].second, bounds[k].first) << "chunk " << k;
    expect_begin = bounds[k].second;
  }
  EXPECT_EQ(expect_begin, end);
}

TEST(ThreadPoolTest, ChunksPartitionTheRange) {
  CheckPartition(/*width=*/4, 0, 1000, /*grain=*/1);
  CheckPartition(/*width=*/4, 0, 1000, /*grain=*/64);
  CheckPartition(/*width=*/3, 5, 12, /*grain=*/1);    // range < chunk cap
  CheckPartition(/*width=*/8, 0, 3, /*grain=*/1);     // range < width
  CheckPartition(/*width=*/2, 100, 101, /*grain=*/7); // single element
  CheckPartition(/*width=*/1, 0, 257, /*grain=*/16);  // serial pool
}

TEST(ThreadPoolTest, SingleChunkRunsInlineOnCaller) {
  ThreadPool pool(4);
  // Range <= grain collapses to one chunk, which must run on the calling
  // thread (the exact serial path, no pool interaction).
  std::thread::id ran_on;
  pool.ParallelFor(0, 8, 16, [&](const ThreadPool::Chunk& c) {
    EXPECT_EQ(c.index, 0u);
    EXPECT_EQ(c.begin, 0u);
    EXPECT_EQ(c.end, 8u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  const std::size_t n = 100000;
  std::vector<std::uint64_t> values(n);
  std::iota(values.begin(), values.end(), 1);
  const std::uint64_t expect =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});

  ThreadPool pool(4);
  const std::size_t chunks = pool.NumChunks(n, 128);
  std::vector<std::uint64_t> partial(chunks, 0);
  pool.ParallelFor(0, n, 128, [&](const ThreadPool::Chunk& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      partial[c.index] += values[i];
    }
  });
  // Exact integer cross-chunk reduction, combined in chunk order.
  std::uint64_t total = 0;
  for (std::uint64_t p : partial) total += p;
  EXPECT_EQ(total, expect);
}

TEST(ThreadPoolTest, ExceptionPropagatesLowestChunkFirst) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(0, 1000, 1, [&](const ThreadPool::Chunk& c) {
      // Several chunks throw; the caller must see the lowest-index one,
      // independent of scheduling.
      if (c.index % 2 == 1) {
        throw std::runtime_error("chunk " + std::to_string(c.index));
      }
      completed.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");
  }
  // All non-throwing chunks still ran (errors don't cancel siblings).
  EXPECT_EQ(completed.load(),
            static_cast<int>(pool.NumChunks(1000, 1) / 2));
}

TEST(ThreadPoolTest, PoolIsReusableAcrossSubmissions) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.ParallelFor(0, 64, 4, [&](const ThreadPool::Chunk& c) {
      std::uint64_t local = 0;
      for (std::size_t i = c.begin; i < c.end; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 64u * 63u / 2);
  }
  auto f1 = pool.Submit([] { return 41; });
  auto f2 = pool.Submit([] { return 1; });
  EXPECT_EQ(f1.get() + f2.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::logic_error("boom"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 32);
}

// Stress: many concurrent ParallelFors from multiple caller threads over
// one shared pool. Primarily a TSan target (the ci.sh sanitizer job runs
// this suite under PAYGO_SANITIZE=thread); the assertions also catch
// lost/duplicated chunks under contention.
TEST(ThreadPoolTest, StressConcurrentCallers) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  constexpr std::size_t kN = 512;
  std::vector<std::thread> callers;
  std::atomic<bool> failed{false};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &failed] {
      for (int r = 0; r < kRounds; ++r) {
        std::atomic<std::uint64_t> sum{0};
        pool.ParallelFor(0, kN, 8, [&](const ThreadPool::Chunk& ch) {
          std::uint64_t local = 0;
          for (std::size_t i = ch.begin; i < ch.end; ++i) local += i + 1;
          sum.fetch_add(local);
        });
        if (sum.load() != kN * (kN + 1) / 2) failed.store(true);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace paygo
