#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/hac.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "synth/ddh_generator.h"
#include "synth/web_generator.h"
#include "util/random.h"

namespace paygo {
namespace {

std::vector<std::vector<std::uint32_t>> Sorted(const HacResult& r) {
  auto c = r.clusters;
  std::sort(c.begin(), c.end());
  return c;
}

/// Property: the sparse engine matches the dense engine exactly on random
/// sparse data, for every supported linkage and threshold.
struct SparseParam {
  LinkageKind linkage;
  double tau;
  int seed;
};

class SparseDenseAgreementTest
    : public ::testing::TestWithParam<SparseParam> {};

TEST_P(SparseDenseAgreementTest, SparseMatchesDense) {
  const SparseParam p = GetParam();
  Rng rng(7000 + p.seed);
  const std::size_t n = 60, dim = 80;
  std::vector<DynamicBitset> features(n, DynamicBitset(dim));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t group = i % 5;
    for (std::size_t b = group * 14; b < group * 14 + 14; ++b) {
      if (rng.NextBernoulli(0.5)) features[i].Set(b);
    }
    if (rng.NextBernoulli(0.2)) features[i].Set(70 + rng.NextBelow(10));
  }
  HacOptions dense;
  dense.linkage = p.linkage;
  dense.tau_c_sim = p.tau;
  HacOptions sparse = dense;
  sparse.use_sparse_engine = true;

  const auto rd = Hac::Run(features, dense);
  const auto rs = Hac::Run(features, sparse);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(Sorted(*rd), Sorted(*rs))
      << LinkageKindName(p.linkage) << " tau=" << p.tau;
}

INSTANTIATE_TEST_SUITE_P(
    LinkagesTausSeeds, SparseDenseAgreementTest,
    ::testing::Values(SparseParam{LinkageKind::kAverage, 0.2, 0},
                      SparseParam{LinkageKind::kAverage, 0.35, 1},
                      SparseParam{LinkageKind::kAverage, 0.5, 2},
                      SparseParam{LinkageKind::kMin, 0.25, 3},
                      SparseParam{LinkageKind::kMin, 0.4, 4},
                      SparseParam{LinkageKind::kMax, 0.3, 5},
                      SparseParam{LinkageKind::kMax, 0.5, 6}));

TEST(SparseHacTest, MatchesDenseOnRealCorpora) {
  for (const SchemaCorpus& corpus :
       {MakeDwCorpus(), [] {
          DdhGeneratorOptions gen;
          gen.num_schemas = 300;
          return MakeDdhCorpus(gen);
        }()}) {
    Tokenizer tok;
    const Lexicon lexicon = Lexicon::Build(corpus, tok);
    FeatureVectorizer vec(lexicon);
    const auto features = vec.VectorizeCorpus();
    HacOptions dense;
    dense.tau_c_sim = 0.25;
    HacOptions sparse = dense;
    sparse.use_sparse_engine = true;
    const auto rd = Hac::Run(features, dense);
    const auto rs = Hac::Run(features, sparse);
    ASSERT_TRUE(rd.ok());
    ASSERT_TRUE(rs.ok()) << rs.status();
    EXPECT_EQ(Sorted(*rd), Sorted(*rs)) << corpus.name();
  }
}

TEST(SparseHacTest, HonorsConstraints) {
  std::vector<DynamicBitset> f(4, DynamicBitset(8));
  for (std::size_t b : {0u, 1u, 2u}) {
    f[0].Set(b);
    f[1].Set(b);
  }
  for (std::size_t b : {5u, 6u, 7u}) {
    f[2].Set(b);
    f[3].Set(b);
  }
  HacOptions opts;
  opts.use_sparse_engine = true;
  opts.tau_c_sim = 0.5;
  opts.cannot_link = {{0, 1}};
  opts.must_link = {{0, 2}};  // feature-disjoint: only must-link can join
  const auto r = Hac::Run(f, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->ClusterOf(0), r->ClusterOf(1));
  EXPECT_EQ(r->ClusterOf(0), r->ClusterOf(2));
}

TEST(SparseHacTest, RejectsUnsupportedModes) {
  std::vector<DynamicBitset> f(2, DynamicBitset(4));
  f[0].Set(0);
  f[1].Set(0);
  HacOptions opts;
  opts.use_sparse_engine = true;
  opts.linkage = LinkageKind::kTotal;
  EXPECT_TRUE(Hac::Run(f, opts).status().IsInvalidArgument());
  opts.linkage = LinkageKind::kAverage;
  opts.max_clusters = 1;
  EXPECT_TRUE(Hac::Run(f, opts).status().IsInvalidArgument());
  opts.max_clusters = 0;
  opts.tau_c_sim = 0.0;
  EXPECT_TRUE(Hac::Run(f, opts).status().IsInvalidArgument());
}

TEST(SparseHacTest, DisjointSchemasNeverMerge) {
  std::vector<DynamicBitset> f(3, DynamicBitset(9));
  f[0].Set(0);
  f[1].Set(3);
  f[2].Set(6);
  HacOptions opts;
  opts.use_sparse_engine = true;
  opts.tau_c_sim = 0.1;
  const auto r = Hac::Run(f, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->clusters.size(), 3u);
}

}  // namespace
}  // namespace paygo
