#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "cluster/hac.h"
#include "cluster/neighbor_graph.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "synth/ddh_generator.h"
#include "synth/many_domains.h"
#include "synth/web_generator.h"
#include "util/random.h"

namespace paygo {
namespace {

std::vector<std::vector<std::uint32_t>> Sorted(const HacResult& r) {
  auto c = r.clusters;
  std::sort(c.begin(), c.end());
  return c;
}

/// Property: the sparse engine matches the dense engine exactly on random
/// sparse data, for every supported linkage and threshold.
struct SparseParam {
  LinkageKind linkage;
  double tau;
  int seed;
};

class SparseDenseAgreementTest
    : public ::testing::TestWithParam<SparseParam> {};

TEST_P(SparseDenseAgreementTest, SparseMatchesDense) {
  const SparseParam p = GetParam();
  Rng rng(7000 + p.seed);
  const std::size_t n = 60, dim = 80;
  std::vector<DynamicBitset> features(n, DynamicBitset(dim));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t group = i % 5;
    for (std::size_t b = group * 14; b < group * 14 + 14; ++b) {
      if (rng.NextBernoulli(0.5)) features[i].Set(b);
    }
    if (rng.NextBernoulli(0.2)) features[i].Set(70 + rng.NextBelow(10));
  }
  HacOptions dense;
  dense.linkage = p.linkage;
  dense.tau_c_sim = p.tau;
  HacOptions sparse = dense;
  sparse.use_sparse_engine = true;

  const auto rd = Hac::Run(features, dense);
  const auto rs = Hac::Run(features, sparse);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(Sorted(*rd), Sorted(*rs))
      << LinkageKindName(p.linkage) << " tau=" << p.tau;
}

INSTANTIATE_TEST_SUITE_P(
    LinkagesTausSeeds, SparseDenseAgreementTest,
    ::testing::Values(SparseParam{LinkageKind::kAverage, 0.2, 0},
                      SparseParam{LinkageKind::kAverage, 0.35, 1},
                      SparseParam{LinkageKind::kAverage, 0.5, 2},
                      SparseParam{LinkageKind::kMin, 0.25, 3},
                      SparseParam{LinkageKind::kMin, 0.4, 4},
                      SparseParam{LinkageKind::kMax, 0.3, 5},
                      SparseParam{LinkageKind::kMax, 0.5, 6}));

TEST(SparseHacTest, MatchesDenseOnRealCorpora) {
  for (const SchemaCorpus& corpus :
       {MakeDwCorpus(), [] {
          DdhGeneratorOptions gen;
          gen.num_schemas = 300;
          return MakeDdhCorpus(gen);
        }()}) {
    Tokenizer tok;
    const Lexicon lexicon = Lexicon::Build(corpus, tok);
    FeatureVectorizer vec(lexicon);
    const auto features = vec.VectorizeCorpus();
    HacOptions dense;
    dense.tau_c_sim = 0.25;
    HacOptions sparse = dense;
    sparse.use_sparse_engine = true;
    const auto rd = Hac::Run(features, dense);
    const auto rs = Hac::Run(features, sparse);
    ASSERT_TRUE(rd.ok());
    ASSERT_TRUE(rs.ok()) << rs.status();
    EXPECT_EQ(Sorted(*rd), Sorted(*rs)) << corpus.name();
  }
}

TEST(SparseHacTest, HonorsConstraints) {
  std::vector<DynamicBitset> f(4, DynamicBitset(8));
  for (std::size_t b : {0u, 1u, 2u}) {
    f[0].Set(b);
    f[1].Set(b);
  }
  for (std::size_t b : {5u, 6u, 7u}) {
    f[2].Set(b);
    f[3].Set(b);
  }
  HacOptions opts;
  opts.use_sparse_engine = true;
  opts.tau_c_sim = 0.5;
  opts.cannot_link = {{0, 1}};
  opts.must_link = {{0, 2}};  // feature-disjoint: only must-link can join
  const auto r = Hac::Run(f, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->ClusterOf(0), r->ClusterOf(1));
  EXPECT_EQ(r->ClusterOf(0), r->ClusterOf(2));
}

TEST(SparseHacTest, RejectsUnsupportedModes) {
  std::vector<DynamicBitset> f(2, DynamicBitset(4));
  f[0].Set(0);
  f[1].Set(0);
  HacOptions opts;
  opts.use_sparse_engine = true;
  opts.linkage = LinkageKind::kTotal;
  EXPECT_TRUE(Hac::Run(f, opts).status().IsInvalidArgument());
  opts.linkage = LinkageKind::kAverage;
  opts.max_clusters = 1;
  EXPECT_TRUE(Hac::Run(f, opts).status().IsInvalidArgument());
  opts.max_clusters = 0;
  opts.tau_c_sim = 0.0;
  EXPECT_TRUE(Hac::Run(f, opts).status().IsInvalidArgument());
}

// --- randomized differential fuzz: sparse vs dense, merge-for-merge ---
//
// Each round draws a random corpus, a random tau, and a linkage, then
// requires the exact sparse engine (fed by the NeighborGraph) to reproduce
// the dense fast engine's dendrogram BITWISE — same merge slots, same
// similarity doubles compared with == — at 1, 2, and 4 threads. On
// failure the SCOPED_TRACE prints the round's seed so the exact corpus
// can be replayed. PAYGO_DETERMINISM_SMALL=1 shrinks the round count
// (TSan CI).

bool SmallFuzzMode() {
  const char* v = std::getenv("PAYGO_DETERMINISM_SMALL");
  return v != nullptr && std::string(v) != "0";
}

std::vector<DynamicBitset> RandomFuzzCorpus(Rng& rng, std::size_t n,
                                            std::size_t dim,
                                            std::size_t groups) {
  std::vector<DynamicBitset> features(n, DynamicBitset(dim));
  const std::size_t width = dim / groups;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = rng.NextBelow(groups);
    for (std::size_t b = g * width; b < (g + 1) * width; ++b) {
      if (rng.NextBernoulli(0.4)) features[i].Set(b);
    }
    // Global noise bits: cross-group feature sharing, including features
    // popular enough to trip the hot-posting / heavy-set path.
    for (int k = 0; k < 2; ++k) {
      if (rng.NextBernoulli(0.3)) features[i].Set(rng.NextBelow(dim));
    }
    // Some schemas stay empty (all-Bernoulli-miss is possible too, but
    // force a few deterministically).
    if (rng.NextBernoulli(0.05)) {
      for (std::size_t b = 0; b < dim; ++b) features[i].Set(b, false);
    }
  }
  return features;
}

void ExpectBitwiseMerges(const HacResult& want, const HacResult& got,
                         const std::string& label) {
  ASSERT_EQ(want.merges.size(), got.merges.size()) << label;
  for (std::size_t m = 0; m < want.merges.size(); ++m) {
    ASSERT_EQ(want.merges[m].slot_a, got.merges[m].slot_a)
        << label << " merge " << m;
    ASSERT_EQ(want.merges[m].slot_b, got.merges[m].slot_b)
        << label << " merge " << m;
    // Bitwise double equality: the sparse engine must perform the same FP
    // operations in the same order as the dense engine.
    ASSERT_EQ(want.merges[m].similarity, got.merges[m].similarity)
        << label << " merge " << m;
  }
  EXPECT_EQ(want.clusters, got.clusters) << label;
}

TEST(SparseHacFuzzTest, RandomCorporaMatchDenseBitwise) {
  const int rounds = SmallFuzzMode() ? 4 : 12;
  const LinkageKind kinds[] = {LinkageKind::kAverage, LinkageKind::kMin,
                               LinkageKind::kMax};
  Rng meta(20260807);
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed = meta.NextU64();
    SCOPED_TRACE("fuzz round " + std::to_string(round) + " seed " +
                 std::to_string(seed));
    Rng rng(seed);
    const std::size_t n = 30 + rng.NextBelow(70);
    const std::size_t dim = 60 + rng.NextBelow(120);
    const std::size_t groups = 3 + rng.NextBelow(5);
    const auto features = RandomFuzzCorpus(rng, n, dim, groups);

    HacOptions opts;
    opts.linkage = kinds[round % 3];
    opts.tau_c_sim = 0.15 + 0.4 * rng.NextDouble();
    const SimilarityMatrix sims(features);
    const auto dense = Hac::Run(features, sims, opts);
    ASSERT_TRUE(dense.ok()) << dense.status();

    for (std::size_t t : {1u, 2u, 4u}) {
      NeighborGraphOptions go;
      go.num_threads = t;
      // Alternate between the auto hot limit and a forced tiny one so the
      // heavy-set sweep is exercised on every corpus shape.
      if (round % 2 == 1) go.hot_posting_limit = 1;
      const auto graph = NeighborGraph::Build(features, go);
      ASSERT_TRUE(graph.ok()) << graph.status();
      HacOptions sopt = opts;
      sopt.num_threads = t;
      const auto sparse = Hac::RunOnGraph(*graph, sopt);
      ASSERT_TRUE(sparse.ok()) << sparse.status();
      ExpectBitwiseMerges(*dense, *sparse,
                          std::string(LinkageKindName(opts.linkage)) +
                              " tau=" + std::to_string(opts.tau_c_sim) +
                              " threads=" + std::to_string(t));
    }
  }
}

// The features-overload sparse engine (use_sparse_engine = true) goes
// through the same graph internally; fuzz it too at several thread counts.
TEST(SparseHacFuzzTest, FeatureOverloadMatchesDenseBitwise) {
  const int rounds = SmallFuzzMode() ? 2 : 6;
  Rng meta(977);
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed = meta.NextU64();
    SCOPED_TRACE("fuzz round " + std::to_string(round) + " seed " +
                 std::to_string(seed));
    Rng rng(seed);
    const auto features = RandomFuzzCorpus(rng, 40 + rng.NextBelow(40),
                                           80 + rng.NextBelow(60), 4);
    HacOptions opts;
    opts.tau_c_sim = 0.2 + 0.3 * rng.NextDouble();
    const auto dense = Hac::Run(features, opts);
    ASSERT_TRUE(dense.ok());
    for (std::size_t t : {1u, 4u}) {
      HacOptions sopt = opts;
      sopt.use_sparse_engine = true;
      sopt.num_threads = t;
      const auto sparse = Hac::Run(features, sopt);
      ASSERT_TRUE(sparse.ok()) << sparse.status();
      ExpectBitwiseMerges(*dense, *sparse, "threads=" + std::to_string(t));
    }
  }
}

// --- LSH mode: recall floor against the dense tau-edge oracle ---
//
// The LSH graph may miss edges (recall < 1) but every edge it keeps is
// exactly verified. Against the oracle set {pairs with Jaccard >=
// recall_tau} from the dense matrix, the banding chosen by ChooseBanding
// must recover at least the configured recall floor. Seeds are fixed, so
// the assertion is deterministic.
TEST(SparseHacLshTest, RecallFloorAgainstDenseOracle) {
  ManyDomainFeatureOptions gen;
  gen.num_schemas = SmallFuzzMode() ? 300 : 1000;
  const auto features = MakeManyDomainFeatures(gen);
  const double tau = 0.25;

  NeighborGraphOptions go;
  go.mode = NeighborGraphMode::kMinHashLsh;
  go.recall_tau = tau;
  go.target_recall = 0.95;
  const auto graph = NeighborGraph::Build(features, go);
  ASSERT_TRUE(graph.ok()) << graph.status();

  std::size_t oracle = 0, found = 0;
  for (std::uint32_t a = 0; a < features.size(); ++a) {
    for (std::uint32_t b = a + 1; b < features.size(); ++b) {
      if (DynamicBitset::Jaccard(features[a], features[b]) < tau) continue;
      ++oracle;
      if (graph->Similarity(a, b) > 0.0f) ++found;
    }
  }
  ASSERT_GT(oracle, 0u);
  const double recall = static_cast<double>(found) / oracle;
  // The banding guarantees >= 0.95 in expectation at exactly tau; pairs
  // above tau collide with higher probability, so the realized recall
  // should clear a 0.9 floor comfortably.
  EXPECT_GE(recall, 0.9) << found << "/" << oracle;

  // Seed-determinism across thread counts: identical edge sets.
  NeighborGraphOptions go4 = go;
  go4.num_threads = 4;
  const auto graph4 = NeighborGraph::Build(features, go4);
  ASSERT_TRUE(graph4.ok());
  ASSERT_EQ(graph->num_edges(), graph4->num_edges());
  for (std::uint32_t i = 0; i < features.size(); ++i) {
    const auto [b1, e1] = graph->Row(i);
    const auto [b4, e4] = graph4->Row(i);
    ASSERT_EQ(e1 - b1, e4 - b4) << "row " << i;
    for (std::ptrdiff_t k = 0; k < e1 - b1; ++k) {
      ASSERT_EQ(b1[k].id, b4[k].id) << "row " << i;
      ASSERT_EQ(b1[k].sim, b4[k].sim) << "row " << i;
    }
  }

  // Clustering the LSH graph still recovers the many-domains structure:
  // compare cluster count against the dense run loosely (recall misses can
  // only fail to merge, never wrongly merge — every kept edge is exact).
  HacOptions hopts;
  hopts.tau_c_sim = tau;
  const auto lsh_clusters = Hac::RunOnGraph(*graph, hopts);
  ASSERT_TRUE(lsh_clusters.ok());
  const auto dense_clusters = Hac::Run(features, hopts);
  ASSERT_TRUE(dense_clusters.ok());
  EXPECT_GE(lsh_clusters->clusters.size(), dense_clusters->clusters.size());
  EXPECT_LE(lsh_clusters->clusters.size(),
            dense_clusters->clusters.size() +
                dense_clusters->clusters.size() / 5 + 5);
}

TEST(SparseHacTest, DisjointSchemasNeverMerge) {
  std::vector<DynamicBitset> f(3, DynamicBitset(9));
  f[0].Set(0);
  f[1].Set(3);
  f[2].Set(6);
  HacOptions opts;
  opts.use_sparse_engine = true;
  opts.tau_c_sim = 0.1;
  const auto r = Hac::Run(f, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->clusters.size(), 3u);
}

}  // namespace
}  // namespace paygo
