// Fleet-wide distributed tracing: wire propagation of the trace context,
// merged cross-shard Chrome timelines (pid-per-process, RTT-midpoint clock
// alignment), /tracez?trace_id= filtering, histogram latency exemplars,
// and the router slow log's trace linkage.
//
// In-process caveat: every fleet member in these tests shares ONE global
// Tracer ring registry, so a kTraceFetch against any in-process shard
// returns the whole process's events. Merged traces therefore duplicate
// events across synthetic pids. The structural assertions below (every
// pid present, one shared trace id, timestamps monotone after alignment,
// depth nesting) hold regardless; separate-process merging is exercised by
// the fleet smoke in tools/ci.sh.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/integration_system.h"
#include "gtest/gtest.h"
#include "obs/admin_server.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "serve/paygo_server.h"
#include "shard/router.h"
#include "shard/shard_service.h"
#include "shard/wire.h"
#include "strict_json.h"
#include "synth/web_generator.h"

namespace paygo {
namespace {

SystemOptions TestOptions() {
  SystemOptions options;
  options.hac.tau_c_sim = 0.25;
  options.assignment.tau_c_sim = 0.25;
  return options;
}

// --- Minimal extraction helpers for the one-event-per-line Chrome trace
// emission (validated as real JSON separately via strict_json). ---

struct FlatEvent {
  std::string name;
  std::string ph;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::int64_t ts = 0;
  std::uint64_t dur = 0;
  std::uint64_t trace_id = 0;
  std::uint32_t depth = 0;
};

// Returns the text after `"key": ` up to the next ',' or '}' (values in
// the emission are numbers or quoted strings with no embedded commas).
std::string RawField(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = object.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  std::size_t end = start;
  if (end < object.size() && object[end] == '"') {
    end = object.find('"', end + 1);
    return object.substr(start + 1, end - start - 1);
  }
  while (end < object.size() && object[end] != ',' && object[end] != '}') {
    ++end;
  }
  return object.substr(start, end - start);
}

std::vector<FlatEvent> ParseTraceObjects(const std::string& json) {
  std::vector<FlatEvent> events;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '{') continue;
    FlatEvent e;
    e.name = RawField(line, "name");
    e.ph = RawField(line, "ph");
    e.pid = static_cast<std::uint32_t>(std::stoul(RawField(line, "pid")));
    e.tid = static_cast<std::uint32_t>(std::stoul(RawField(line, "tid")));
    if (e.ph == "X") {
      e.ts = std::stoll(RawField(line, "ts"));
      e.dur = std::stoull(RawField(line, "dur"));
      e.trace_id = std::stoull(RawField(line, "trace_id"));
      e.depth = static_cast<std::uint32_t>(std::stoul(RawField(line, "depth")));
    }
    events.push_back(std::move(e));
  }
  return events;
}

TEST(WireTraceContextTest, EncodeParseRoundTrip) {
  WireTraceContext ctx;
  ctx.trace_id = 0xdeadbeefcafeULL;
  ctx.parent_span_id = 77;
  ctx.sampled = true;
  ctx.deadline_us = 1500000;

  Result<WireTraceContext> back = ParseTraceContext(EncodeTraceContext(ctx));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->trace_id, ctx.trace_id);
  EXPECT_EQ(back->parent_span_id, ctx.parent_span_id);
  EXPECT_TRUE(back->sampled);
  EXPECT_EQ(back->deadline_us, ctx.deadline_us);

  ctx.sampled = false;
  EXPECT_FALSE(ParseTraceContext(EncodeTraceContext(ctx))->sampled);
}

TEST(WireTraceContextTest, ParseRejectsMalformedPreambles) {
  EXPECT_FALSE(ParseTraceContext("").ok());
  EXPECT_FALSE(ParseTraceContext("1 2 3").ok());          // missing field
  EXPECT_FALSE(ParseTraceContext("0 2 1 4").ok());        // zero trace id
  EXPECT_FALSE(ParseTraceContext("1 2 1 4 junk").ok());   // trailing junk
  EXPECT_FALSE(ParseTraceContext("x 2 1 4").ok());        // non-numeric
}

TEST(ScopedTraceContextTest, RestoresPreviousIdOnExitAndNests) {
  Tracer::SetCurrentTraceId(0);
  {
    ScopedTraceContext outer(11);
    EXPECT_EQ(Tracer::CurrentTraceId(), 11u);
    {
      ScopedTraceContext inner(22);
      EXPECT_EQ(Tracer::CurrentTraceId(), 22u);
      EXPECT_EQ(inner.previous(), 11u);
    }
    EXPECT_EQ(Tracer::CurrentTraceId(), 11u);
  }
  EXPECT_EQ(Tracer::CurrentTraceId(), 0u);
}

TEST(ExemplarTest, RecordLinksBucketToLastSeenTraceId) {
  LatencyHistogram h;
  h.Record(5);  // untraced sample leaves no exemplar
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(h.ExemplarTraceId(i), 0u);
  }
  h.Record(5, 42);    // 5us lands in (4, 8]
  h.Record(100, 77);  // 100us lands in (64, 128]
  h.Record(5, 43);    // last-seen wins
  EXPECT_EQ(h.ExemplarTraceId(3), 43u);
  EXPECT_EQ(h.ExemplarTraceId(7), 77u);
  EXPECT_EQ(h.Count(), 4u);

  const std::string json = HistogramSummaryJson(h);
  EXPECT_TRUE(strict_json::IsValid(json)) << strict_json::ErrorOf(json);
  EXPECT_NE(json.find("\"exemplars\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"8\": 43"), std::string::npos) << json;
  EXPECT_NE(json.find("\"128\": 77"), std::string::npos) << json;

  h.Reset();
  EXPECT_EQ(h.ExemplarTraceId(3), 0u);
  const std::string empty = HistogramSummaryJson(h);
  EXPECT_TRUE(strict_json::IsValid(empty)) << strict_json::ErrorOf(empty);
  EXPECT_NE(empty.find("\"exemplars\": {}"), std::string::npos) << empty;
}

TEST(ExemplarTest, PrometheusSiblingSeriesKeepsScrapeGrammar) {
  LatencyHistogram h;
  h.Record(5, 42);
  std::ostringstream os;
  AppendPrometheusHistogram(os, "test_hist", h);
  const std::string text = os.str();
  EXPECT_NE(text.find("test_hist_exemplar_trace_id{le=\"8\"} 42"),
            std::string::npos)
      << text;

  // Every line must fit the plain `name{labels} value` / `name value`
  // scrape grammar (the admin-server test's parser depends on it): no
  // OpenMetrics `# {...}` exemplar suffixes.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find(" # "), std::string::npos) << line;
    // The trailing token parses fully as a number.
    std::size_t consumed = 0;
    (void)std::stod(line.substr(space + 1), &consumed);
    EXPECT_EQ(consumed, line.size() - space - 1) << line;
  }
}

TEST(FleetTraceTest, MergedTraceSpansEveryProcessUnderOneTraceId) {
  Tracer::Enable();
  Tracer::ClearAll();

  // Two in-process primaries holding different corpora.
  auto system_a = IntegrationSystem::Build(MakeDwCorpus(), TestOptions());
  ASSERT_TRUE(system_a.ok()) << system_a.status();
  PaygoServer server_a{ServeOptions{}};
  ASSERT_TRUE(server_a.Start().ok());
  ASSERT_TRUE(server_a.InstallSystemAsync(std::move(*system_a)).get().ok());
  ShardService service_a(server_a);
  Result<std::uint16_t> port_a = service_a.Start();
  ASSERT_TRUE(port_a.ok()) << port_a.status();

  auto system_b = IntegrationSystem::Build(MakeDwSsCorpus(), TestOptions());
  ASSERT_TRUE(system_b.ok()) << system_b.status();
  PaygoServer server_b{ServeOptions{}};
  ASSERT_TRUE(server_b.Start().ok());
  ASSERT_TRUE(server_b.InstallSystemAsync(std::move(*system_b)).get().ok());
  ShardService service_b(server_b);
  Result<std::uint16_t> port_b = service_b.Start();
  ASSERT_TRUE(port_b.ok()) << port_b.status();

  RouterOptions options;
  options.request_timeout_ms = 2000;
  options.slow_query_threshold_us = 0;  // retain every scatter in the log
  const ShardRouter router({ShardAddress{"127.0.0.1", *port_a},
                            ShardAddress{"127.0.0.1", *port_b}},
                           options);

  Result<ScatterResult> scattered =
      router.Classify("departure city arrival", 3);
  ASSERT_TRUE(scattered.ok()) << scattered.status();
  EXPECT_EQ(scattered->shards_ok, 2u);
  ASSERT_NE(scattered->trace_id, 0u);
  ASSERT_EQ(scattered->shard_latency_us.size(), 2u);
  EXPECT_GT(scattered->shard_latency_us[0], 0u);
  EXPECT_GT(scattered->shard_latency_us[1], 0u);
  const std::uint64_t trace_id = scattered->trace_id;

  Result<std::string> merged = router.FleetTraceJson(trace_id);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ASSERT_TRUE(strict_json::IsValid(*merged)) << strict_json::ErrorOf(*merged);

  const std::vector<FlatEvent> events = ParseTraceObjects(*merged);
  ASSERT_FALSE(events.empty());

  // One process_name metadata track per process: router + both shards.
  bool meta_pid[4] = {false, false, false, false};
  for (const FlatEvent& e : events) {
    if (e.ph == "M" && e.name == "process_name" && e.pid < 4) {
      meta_pid[e.pid] = true;
    }
  }
  EXPECT_TRUE(meta_pid[1]);
  EXPECT_TRUE(meta_pid[2]);
  EXPECT_TRUE(meta_pid[3]);

  // Every complete event carries THE trace id; client- and server-side
  // span names appear under every synthetic pid; timestamps are monotone
  // after clock alignment (the merge sorts by aligned ts).
  bool pid_has_client[4] = {false, false, false, false};
  bool pid_has_server[4] = {false, false, false, false};
  std::int64_t last_ts = INT64_MIN;
  std::size_t x_events = 0;
  for (const FlatEvent& e : events) {
    if (e.ph != "X") continue;
    ++x_events;
    EXPECT_EQ(e.trace_id, trace_id) << e.name;
    ASSERT_LT(e.pid, 4u);
    EXPECT_GE(e.ts, last_ts) << "merge output not sorted by aligned ts";
    last_ts = e.ts;
    if (e.name == "router.scatter" || e.name == "router.shard_call") {
      pid_has_client[e.pid] = true;
    }
    if (e.name == "shard.handle" || e.name == "serve.request") {
      pid_has_server[e.pid] = true;
    }
  }
  ASSERT_GT(x_events, 0u);
  EXPECT_TRUE(pid_has_client[1]);
  // In-process fleets share one ring registry, so every pid's fetch sees
  // both sides; what matters is that server-side spans reached the merge
  // under each shard's synthetic pid.
  EXPECT_TRUE(pid_has_server[2]);
  EXPECT_TRUE(pid_has_server[3]);

  // Parent/child nesting survives the merge: on some (pid, tid) track a
  // depth d+1 event is contained within a depth d event's window.
  bool nested = false;
  for (const FlatEvent& outer : events) {
    if (outer.ph != "X") continue;
    for (const FlatEvent& inner : events) {
      if (inner.ph != "X" || inner.pid != outer.pid ||
          inner.tid != outer.tid || inner.depth != outer.depth + 1) {
        continue;
      }
      if (inner.ts >= outer.ts && inner.ts + static_cast<std::int64_t>(
                                                 inner.dur) <=
                                      outer.ts + static_cast<std::int64_t>(
                                                     outer.dur)) {
        nested = true;
      }
    }
  }
  EXPECT_TRUE(nested) << "no depth-nested span pair survived the merge";

  // Exemplars: the traced classify landed in each primary's latency
  // histogram with this trace id as the bucket's last-seen exemplar, so a
  // latency outlier resolves to a fetchable fleet trace.
  auto has_exemplar = [&](const LatencyHistogram& h) {
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (h.ExemplarTraceId(i) == trace_id) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_exemplar(server_a.metrics().classify_latency));
  EXPECT_TRUE(has_exemplar(server_b.metrics().classify_latency));

  // Router slow log: the scatter is retained with its per-shard latency
  // breakdown and the trace id.
  const std::vector<RouterSlowEntry> slow = router.SlowEntries();
  ASSERT_FALSE(slow.empty());
  const RouterSlowEntry& entry = slow.back();
  EXPECT_EQ(entry.trace_id, trace_id);
  EXPECT_EQ(entry.query, "departure city arrival");
  EXPECT_EQ(entry.shards_total, 2u);
  ASSERT_EQ(entry.shard_latency_us.size(), 2u);
  const std::string slow_json = router.SlowLogJson();
  EXPECT_TRUE(strict_json::IsValid(slow_json))
      << strict_json::ErrorOf(slow_json);
  EXPECT_NE(slow_json.find(std::to_string(trace_id)), std::string::npos);

  // An unsampled preamble still reaches the shard but its spans must NOT
  // adopt the trace id.
  WireTraceContext unsampled;
  unsampled.trace_id = Tracer::NextTraceId();
  unsampled.parent_span_id = 1;
  unsampled.sampled = false;
  unsampled.deadline_us = 1000000;
  Result<Frame> reply = CallOnceTraced("127.0.0.1", *port_a,
                                       FrameType::kClassify, "city hotel 3",
                                       1000, &unsampled);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(Tracer::SnapshotEvents(unsampled.trace_id).empty());

  service_a.Stop();
  service_b.Stop();
  server_a.Stop();
  server_b.Stop();
  Tracer::Disable();
}

TEST(FleetTraceTest, TracezEndpointFiltersByTraceId) {
  Tracer::Enable();
  const std::uint64_t id_a = Tracer::NextTraceId();
  const std::uint64_t id_b = Tracer::NextTraceId();
  {
    ScopedTraceContext scope(id_a);
    ScopedSpan span("tracez.keep_me");
  }
  {
    ScopedTraceContext scope(id_b);
    ScopedSpan span("tracez.filter_me_out");
  }

  AdminServer admin{AdminServerOptions{}};
  RegisterObsEndpoints(admin);
  Result<std::uint16_t> port = admin.Start();
  ASSERT_TRUE(port.ok()) << port.status();

  Result<std::string> filtered =
      AdminHttpGet(*port, "/tracez?trace_id=" + std::to_string(id_a));
  ASSERT_TRUE(filtered.ok()) << filtered.status();
  EXPECT_NE(filtered->find("tracez.keep_me"), std::string::npos);
  EXPECT_EQ(filtered->find("tracez.filter_me_out"), std::string::npos);
  const std::size_t body_at = filtered->find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = filtered->substr(body_at + 4);
  EXPECT_TRUE(strict_json::IsValid(body)) << strict_json::ErrorOf(body);

  // Unfiltered export keeps both; a bogus key is ignored (no filter).
  Result<std::string> all = AdminHttpGet(*port, "/tracez?other=1");
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_NE(all->find("tracez.keep_me"), std::string::npos);
  EXPECT_NE(all->find("tracez.filter_me_out"), std::string::npos);

  admin.Stop();
  Tracer::Disable();
}

TEST(FleetTraceTest, QueryParamU64ParsesAndRejects) {
  EXPECT_EQ(QueryParamU64("trace_id=42", "trace_id"), 42u);
  EXPECT_EQ(QueryParamU64("a=1&trace_id=9&b=2", "trace_id"), 9u);
  EXPECT_EQ(QueryParamU64("", "trace_id"), 0u);
  EXPECT_EQ(QueryParamU64("trace_id=junk", "trace_id"), 0u);
  EXPECT_EQ(QueryParamU64("other=5", "trace_id"), 0u);
}

}  // namespace
}  // namespace paygo
