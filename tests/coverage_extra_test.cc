#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "classify/naive_bayes.h"
#include "cluster/dendrogram.h"
#include "cluster/hac.h"
#include "eval/clustering_metrics.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "synth/many_domains.h"
#include "text/similarity_index.h"
#include "util/random.h"

namespace paygo {
namespace {

/// Cross-module corner cases that the per-module suites do not cover.

DynamicBitset Bits(std::size_t dim, std::initializer_list<std::size_t> set) {
  DynamicBitset b(dim);
  for (std::size_t i : set) b.Set(i);
  return b;
}

// --- Dendrogram over the sparse engine's merge history ---

TEST(CoverageTest, DendrogramWorksOnSparseEngineOutput) {
  std::vector<DynamicBitset> f(6, DynamicBitset(16));
  for (std::size_t b : {0u, 1u, 2u}) {
    f[0].Set(b);
    f[1].Set(b);
  }
  f[1].Set(3);
  for (std::size_t b : {8u, 9u, 10u}) {
    f[2].Set(b);
    f[3].Set(b);
  }
  f[3].Set(11);
  f[4].Set(14);
  f[5].Set(15);
  HacOptions opts;
  opts.use_sparse_engine = true;
  opts.tau_c_sim = 0.3;
  const auto result = Hac::Run(f, opts);
  ASSERT_TRUE(result.ok());
  const auto dendro = Dendrogram::Build(f.size(), *result);
  ASSERT_TRUE(dendro.ok()) << dendro.status();
  auto cut = dendro->CutAt(0.3);
  auto expected = result->clusters;
  std::sort(cut.begin(), cut.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cut, expected);
}

// --- Constrained clustering composes with the sparse engine and the
// dendrogram (must-link merges recorded at similarity 1.0) ---

TEST(CoverageTest, MustLinkMergeAppearsAtFullSimilarityInDendrogram) {
  std::vector<DynamicBitset> f(3, DynamicBitset(8));
  f[0].Set(0);
  f[1].Set(3);
  f[2].Set(6);
  HacOptions opts;
  opts.tau_c_sim = 0.9;
  opts.must_link = {{0, 2}};
  const auto result = Hac::Run(f, opts);
  ASSERT_TRUE(result.ok());
  const auto dendro = Dendrogram::Build(f.size(), *result);
  ASSERT_TRUE(dendro.ok());
  // Even a cut at 1.0 keeps the must-linked pair together.
  const auto cut = dendro->CutAt(1.0);
  bool together = false;
  for (const auto& c : cut) {
    if (std::binary_search(c.begin(), c.end(), 0u) &&
        std::binary_search(c.begin(), c.end(), 2u)) {
      together = true;
    }
  }
  EXPECT_TRUE(together);
}

// --- Naive Bayes conditional monotonicity ---

TEST(CoverageTest, AddingFeatureBearingSchemaRaisesItsConditional) {
  const std::size_t dim = 6;
  // Domain A: one schema with feature 0. Domain B: two schemas with
  // feature 0. Pr(F_0 = 1 | B) must exceed Pr(F_0 = 1 | A) at equal
  // smoothing scale? Not directly comparable across sizes — instead grow
  // ONE domain and watch its own conditional rise.
  std::vector<DynamicBitset> two = {Bits(dim, {0}), Bits(dim, {0, 1})};
  std::vector<DynamicBitset> three = {Bits(dim, {0}), Bits(dim, {0, 1}),
                                      Bits(dim, {0, 2})};
  DomainModel m2 = DomainModel::Build({{0, 1}}, {{{0, 1.0}}, {{0, 1.0}}});
  DomainModel m3 = DomainModel::Build(
      {{0, 1, 2}}, {{{0, 1.0}}, {{0, 1.0}}, {{0, 1.0}}});
  const auto c2 = ComputeDomainConditionals(m2, 0, two, 3,
                                            ClassifierEngine::kFactored, 24);
  const auto c3 = ComputeDomainConditionals(m3, 0, three, 3,
                                            ClassifierEngine::kFactored, 24);
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(c3.ok());
  // Every member carries feature 0 in both cases; with more members the
  // m-estimate's pull toward p = 1/dim weakens, so q1[0] rises.
  EXPECT_GT(c3->q1[0], c2->q1[0]);
  // Feature 5 appears nowhere; its conditional stays near the smoothing
  // floor and falls as the domain grows.
  EXPECT_LT(c3->q1[5], c2->q1[5]);
}

TEST(CoverageTest, PriorGrowsWithDomainSize) {
  const std::size_t dim = 4;
  std::vector<DynamicBitset> f(4, DynamicBitset(dim));
  DomainModel small = DomainModel::Build(
      {{0}, {1, 2, 3}},
      {{{0, 1.0}}, {{1, 1.0}}, {{1, 1.0}}, {{1, 1.0}}});
  const auto clf = NaiveBayesClassifier::Build(small, f, 4, {});
  ASSERT_TRUE(clf.ok());
  EXPECT_NEAR(clf->Prior(0), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(clf->Prior(1), 3.0 / 4.0, 1e-12);
}

// --- Similarity index: edit-distance kinds go through the exhaustive
// path; threshold-1.0 LCS equals exact matching ---

TEST(CoverageTest, LevenshteinIndexMatchesBruteForce) {
  const std::vector<std::string> terms = {"title",  "titles", "tilde",
                                          "author", "autor",  "make"};
  TermSimilarity sim(TermSimilarityKind::kLevenshtein);
  SimilarityIndex idx(terms, sim, 0.8);
  for (std::uint32_t i = 0; i < terms.size(); ++i) {
    std::vector<std::uint32_t> expected;
    for (std::uint32_t j = 0; j < terms.size(); ++j) {
      if (i == j || sim.Compute(terms[i], terms[j]) >= 0.8) {
        expected.push_back(j);
      }
    }
    EXPECT_EQ(idx.Neighbors(i), expected) << terms[i];
  }
  // "autores" matches "autor" (distance 2 of 7 -> 0.71 < 0.8? check via
  // Match against the brute force instead of hand-deriving).
  const auto hits = idx.Match("authors");
  std::vector<std::uint32_t> expected;
  for (std::uint32_t j = 0; j < terms.size(); ++j) {
    if (sim.Compute("authors", terms[j]) >= 0.8) expected.push_back(j);
  }
  EXPECT_EQ(hits, expected);
}

TEST(CoverageTest, JaroWinklerIndexMatchesBruteForce) {
  const std::vector<std::string> terms = {"departure", "departing",
                                          "department", "airline", "price"};
  TermSimilarity sim(TermSimilarityKind::kJaroWinkler);
  SimilarityIndex idx(terms, sim, 0.9);
  for (std::uint32_t i = 0; i < terms.size(); ++i) {
    std::vector<std::uint32_t> expected;
    for (std::uint32_t j = 0; j < terms.size(); ++j) {
      if (i == j || sim.Compute(terms[i], terms[j]) >= 0.9) {
        expected.push_back(j);
      }
    }
    EXPECT_EQ(idx.Neighbors(i), expected) << terms[i];
  }
}

TEST(CoverageTest, LcsThresholdOneEqualsExactIdentity) {
  const std::vector<std::string> terms = {"title", "titles", "make"};
  SimilarityIndex idx(terms, TermSimilarity(TermSimilarityKind::kLcs), 1.0);
  for (std::uint32_t i = 0; i < terms.size(); ++i) {
    EXPECT_EQ(idx.Neighbors(i), (std::vector<std::uint32_t>{i}));
  }
}

// --- Clustering metrics on degenerate inputs ---

TEST(CoverageTest, UnlabeledCorpusYieldsZeroMetricsWithoutCrashing) {
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"x"}), {});
  corpus.Add(Schema("b", {"x"}), {});
  const DomainModel model =
      DomainModel::Build({{0, 1}}, {{{0, 1.0}}, {{0, 1.0}}});
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  EXPECT_DOUBLE_EQ(eval.avg_precision, 0.0);
  EXPECT_DOUBLE_EQ(eval.avg_recall, 0.0);
  EXPECT_DOUBLE_EQ(eval.fragmentation, 0.0);
  EXPECT_TRUE(eval.dominant_labels[0].empty());
}

TEST(CoverageTest, AllSingletonModelIsFullyUnclustered) {
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"x"}), {"l1"});
  corpus.Add(Schema("b", {"y"}), {"l2"});
  const DomainModel model =
      DomainModel::Build({{0}, {1}}, {{{0, 1.0}}, {{1, 1.0}}});
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  EXPECT_DOUBLE_EQ(eval.frac_unclustered, 1.0);
  EXPECT_EQ(eval.num_singleton_domains, 2u);
}

// --- Many-domains generator invariants ---

TEST(CoverageTest, ManyDomainCorpusHasDisjointDomainVocabularies) {
  ManyDomainOptions opts;
  opts.num_domains = 20;
  opts.seed = 3;
  const SchemaCorpus corpus = MakeManyDomainCorpus(opts);
  EXPECT_EQ(corpus.AllLabels().size(), 20u);
  Tokenizer tok;
  // Terms of different domains must not collide (the suffix guarantees
  // exactness; near-collisions are what the clustering test below covers).
  std::map<std::string, std::string> term_owner;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::string& label = corpus.labels(i)[0];
    for (const std::string& t : tok.TokenizeAll(corpus.schema(i).attributes)) {
      const auto it = term_owner.find(t);
      if (it == term_owner.end()) {
        term_owner.emplace(t, label);
      } else {
        EXPECT_EQ(it->second, label) << t;
      }
    }
  }
}

TEST(CoverageTest, ManyDomainCorpusClustersPerfectly) {
  ManyDomainOptions opts;
  opts.num_domains = 30;
  const SchemaCorpus corpus = MakeManyDomainCorpus(opts);
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lexicon);
  const auto features = vec.VectorizeCorpus();
  HacOptions hac;
  hac.tau_c_sim = 0.2;
  hac.use_sparse_engine = true;
  const auto clustering = Hac::Run(features, hac);
  ASSERT_TRUE(clustering.ok());
  AssignmentOptions assign;
  assign.tau_c_sim = 0.2;
  SimilarityMatrix sims(features);
  const auto model = AssignProbabilities(sims, *clustering, assign);
  ASSERT_TRUE(model.ok());
  const ClusteringEvaluation eval = EvaluateClustering(*model, corpus);
  EXPECT_GT(eval.avg_precision, 0.99);
  EXPECT_GT(eval.avg_recall, 0.9);
}

// --- Deterministic tie-breaking of the heap engine ---

TEST(CoverageTest, IdenticalRunsProduceIdenticalMergeHistories) {
  Rng rng(777);
  std::vector<DynamicBitset> f(30, DynamicBitset(40));
  for (auto& b : f) {
    for (std::size_t j = 0; j < 40; ++j) {
      if (rng.NextBernoulli(0.3)) b.Set(j);
    }
  }
  HacOptions opts;
  opts.tau_c_sim = 0.2;
  const auto r1 = Hac::Run(f, opts);
  const auto r2 = Hac::Run(f, opts);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->merges.size(), r2->merges.size());
  for (std::size_t k = 0; k < r1->merges.size(); ++k) {
    EXPECT_EQ(r1->merges[k].slot_a, r2->merges[k].slot_a);
    EXPECT_EQ(r1->merges[k].slot_b, r2->merges[k].slot_b);
    EXPECT_DOUBLE_EQ(r1->merges[k].similarity, r2->merges[k].similarity);
  }
}

}  // namespace
}  // namespace paygo
