#include "text/porter_stemmer.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

TEST(PorterStemmerTest, ClassicExamples) {
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("caress"), "caress");
  EXPECT_EQ(PorterStem("cats"), "cat");
  EXPECT_EQ(PorterStem("agreed"), "agre");
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("sing"), "sing");
}

TEST(PorterStemmerTest, Step1bRepairs) {
  EXPECT_EQ(PorterStem("conflated"), "conflat");
  EXPECT_EQ(PorterStem("troubled"), "troubl");
  EXPECT_EQ(PorterStem("sized"), "size");
  EXPECT_EQ(PorterStem("hopping"), "hop");
  EXPECT_EQ(PorterStem("falling"), "fall");
  EXPECT_EQ(PorterStem("hissing"), "hiss");
  EXPECT_EQ(PorterStem("failing"), "fail");
  EXPECT_EQ(PorterStem("filing"), "file");
}

TEST(PorterStemmerTest, Step2Suffixes) {
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("digitizer"), "digit");
  EXPECT_EQ(PorterStem("operator"), "oper");
}

TEST(PorterStemmerTest, Step3And4Suffixes) {
  EXPECT_EQ(PorterStem("triplicate"), "triplic");
  EXPECT_EQ(PorterStem("hopeful"), "hope");
  EXPECT_EQ(PorterStem("goodness"), "good");
  EXPECT_EQ(PorterStem("adjustment"), "adjust");
  EXPECT_EQ(PorterStem("dependent"), "depend");
  EXPECT_EQ(PorterStem("effective"), "effect");
}

TEST(PorterStemmerTest, SchemaVocabularyVariantsShareStems) {
  // The property the kStem similarity mode relies on: morphological
  // variants of attribute terms map to one stem.
  EXPECT_EQ(PorterStem("departure"), PorterStem("departures"));
  EXPECT_EQ(PorterStem("author"), PorterStem("authors"));
  EXPECT_EQ(PorterStem("rating"), PorterStem("ratings"));
  EXPECT_EQ(PorterStem("publication"), PorterStem("publications"));
}

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("at"), "at");
  EXPECT_EQ(PorterStem("by"), "by");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemmerTest, NonLowercaseInputPassedThrough) {
  EXPECT_EQ(PorterStem("Running"), "Running");
  EXPECT_EQ(PorterStem("abc123"), "abc123");
}

TEST(PorterStemmerTest, Idempotent) {
  for (const char* w :
       {"departure", "destination", "authors", "publications", "relational",
        "generalization", "hopping"}) {
    const std::string once = PorterStem(w);
    EXPECT_EQ(PorterStem(once), once) << w;
  }
}

}  // namespace
}  // namespace paygo
