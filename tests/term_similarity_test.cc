#include "text/term_similarity.h"

#include <gtest/gtest.h>

#include <string>

#include "util/random.h"

namespace paygo {
namespace {

TEST(LcsTermSimilarityTest, MatchesThesisFormula) {
  // t_sim = 2 * LCS / (len1 + len2).
  EXPECT_DOUBLE_EQ(LcsTermSimilarity("abc", "abc"), 1.0);
  // LCS("abcd", "abxy") = 2; 2*2/(4+4) = 0.5.
  EXPECT_DOUBLE_EQ(LcsTermSimilarity("abcd", "abxy"), 0.5);
  EXPECT_DOUBLE_EQ(LcsTermSimilarity("abc", "xyz"), 0.0);
}

TEST(LcsTermSimilarityTest, PluralsPassTheDefaultThreshold) {
  // departure/departures: 2*9/(9+10) = 18/19 ~ 0.947 >= 0.8.
  EXPECT_GE(LcsTermSimilarity("departure", "departures"), 0.8);
  EXPECT_GE(LcsTermSimilarity("author", "authors"), 0.8);
}

TEST(LcsTermSimilarityTest, DifferentInflectionsFailTheDefaultThreshold) {
  // departure/departing share only "depart": 2*6/18 = 0.667 < 0.8.
  EXPECT_LT(LcsTermSimilarity("departure", "departing"), 0.8);
}

TEST(LcsTermSimilarityTest, EmptyTermsHaveZeroSimilarity) {
  EXPECT_DOUBLE_EQ(LcsTermSimilarity("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(LcsTermSimilarity("", ""), 0.0);
}

TEST(TermSimilarityTest, StemKindMatchesSameStemOnly) {
  TermSimilarity sim(TermSimilarityKind::kStem);
  EXPECT_DOUBLE_EQ(sim.Compute("departure", "departures"), 1.0);
  EXPECT_DOUBLE_EQ(sim.Compute("departure", "departing"), 0.0);
  EXPECT_DOUBLE_EQ(sim.Compute("cat", "cats"), 1.0);
  EXPECT_DOUBLE_EQ(sim.Compute("cat", "dog"), 0.0);
}

TEST(TermSimilarityTest, ExactKind) {
  TermSimilarity sim(TermSimilarityKind::kExact);
  EXPECT_DOUBLE_EQ(sim.Compute("title", "title"), 1.0);
  EXPECT_DOUBLE_EQ(sim.Compute("title", "titles"), 0.0);
}

TEST(TermSimilarityTest, UpperBoundDominatesLcsSimilarity) {
  TermSimilarity sim(TermSimilarityKind::kLcs);
  Rng rng(3);
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    const std::size_t la = 1 + rng.NextBelow(12);
    const std::size_t lb = 1 + rng.NextBelow(12);
    for (std::size_t i = 0; i < la; ++i) {
      a.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    for (std::size_t i = 0; i < lb; ++i) {
      b.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    EXPECT_LE(sim.Compute(a, b), sim.UpperBound(a.size(), b.size()) + 1e-12);
  }
}

TEST(TermSimilarityTest, UpperBoundFormula) {
  TermSimilarity sim(TermSimilarityKind::kLcs);
  // 2*min(3,9)/(3+9) = 0.5.
  EXPECT_DOUBLE_EQ(sim.UpperBound(3, 9), 0.5);
  EXPECT_DOUBLE_EQ(sim.UpperBound(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(sim.UpperBound(0, 5), 0.0);
}

TEST(TermSimilarityTest, SymmetricAcrossKinds) {
  for (auto kind :
       {TermSimilarityKind::kLcs, TermSimilarityKind::kStem,
        TermSimilarityKind::kExact, TermSimilarityKind::kLevenshtein,
        TermSimilarityKind::kJaroWinkler}) {
    TermSimilarity sim(kind);
    EXPECT_DOUBLE_EQ(sim.Compute("professor", "professional"),
                     sim.Compute("professional", "professor"));
  }
}

TEST(LevenshteinTest, DistanceBasics) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u);
}

TEST(LevenshteinTest, SimilarityNormalized) {
  // kitten/sitting: 1 - 3/7.
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 0.0);
}

TEST(LevenshteinTest, UpperBoundHolds) {
  TermSimilarity sim(TermSimilarityKind::kLevenshtein);
  Rng rng(4);
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    const std::size_t la = 1 + rng.NextBelow(10);
    const std::size_t lb = 1 + rng.NextBelow(10);
    for (std::size_t i = 0; i < la; ++i) {
      a.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    for (std::size_t i = 0; i < lb; ++i) {
      b.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    EXPECT_LE(sim.Compute(a, b), sim.UpperBound(a.size(), b.size()) + 1e-12);
  }
}

TEST(JaroWinklerTest, ClassicExamples) {
  // Standard reference values.
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444444444, 1e-9);
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611111111, 1e-9);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7666666667, 1e-9);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoostOnlyHelps) {
  // Winkler adds a non-negative prefix bonus.
  for (const auto& [a, b] : std::vector<std::pair<std::string, std::string>>{
           {"departure", "departing"}, {"make", "made"}, {"title", "titles"}}) {
    EXPECT_GE(JaroWinklerSimilarity(a, b), JaroSimilarity(a, b) - 1e-12);
    EXPECT_LE(JaroWinklerSimilarity(a, b), 1.0 + 1e-12);
  }
}

TEST(NewKindsTest, PluralsPassReasonableThresholds) {
  TermSimilarity lev(TermSimilarityKind::kLevenshtein);
  TermSimilarity jw(TermSimilarityKind::kJaroWinkler);
  EXPECT_GE(lev.Compute("author", "authors"), 0.8);
  EXPECT_GE(jw.Compute("author", "authors"), 0.9);
}

}  // namespace
}  // namespace paygo
