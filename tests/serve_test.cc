#include "serve/paygo_server.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "util/bounded_queue.h"
#include "serve/load_generator.h"
#include "serve/result_cache.h"
#include "serve/server_metrics.h"

namespace paygo {
namespace {

/// The same tiny three-domain corpus the integration-system tests use.
SchemaCorpus SmallCorpus() {
  SchemaCorpus corpus("small");
  corpus.Add(Schema("expedia",
                    {"departure airport", "destination airport",
                     "departing", "returning", "airline"}),
             {"travel"});
  corpus.Add(Schema("orbitz",
                    {"departure airport", "destination", "airline",
                     "passengers"}),
             {"travel"});
  corpus.Add(Schema("kayak",
                    {"departure", "destination airport", "airline", "class"}),
             {"travel"});
  corpus.Add(Schema("dblp", {"title", "authors", "year of publish",
                             "conference name"}),
             {"bibliography"});
  corpus.Add(Schema("citeseer", {"title", "author", "year", "journal"}),
             {"bibliography"});
  corpus.Add(Schema("autotrader", {"make", "model", "year", "price"}),
             {"cars"});
  return corpus;
}

std::unique_ptr<IntegrationSystem> BuildSmallSystem() {
  auto sys = IntegrationSystem::Build(SmallCorpus());
  EXPECT_TRUE(sys.ok()) << sys.status();
  return std::move(*sys);
}

// --- BoundedQueue ---

TEST(BoundedQueueTest, RejectsWhenFullAndDrainsInOrder) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // admission control
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_TRUE(queue.TryPush(4));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(5));        // closed
  EXPECT_EQ(queue.Pop().value(), 4);     // drains queued work
  EXPECT_FALSE(queue.Pop().has_value());  // then signals shutdown
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> queue(4);
  std::thread producer([&] { queue.TryPush(7); });
  EXPECT_EQ(queue.Pop().value(), 7);
  producer.join();
}

// --- NormalizeQueryKey ---

TEST(NormalizeQueryKeyTest, CanonicalizesCaseAndWhitespace) {
  EXPECT_EQ(NormalizeQueryKey("  Departure   TORONTO "),
            "departure toronto");
  EXPECT_EQ(NormalizeQueryKey("departure toronto"), "departure toronto");
  EXPECT_EQ(NormalizeQueryKey("\t\n"), "");
}

// --- QueryResultCache ---

QueryResultCache::Value MakeValue(double score) {
  std::vector<DomainScore> scores(1);
  scores[0].domain = 0;
  scores[0].log_posterior = score;
  return std::make_shared<const std::vector<DomainScore>>(
      std::move(scores));
}

TEST(QueryResultCacheTest, HitsMissesAndLru) {
  QueryResultCache cache(/*capacity=*/2, /*num_shards=*/1);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", MakeValue(1.0), 0);
  cache.Insert("b", MakeValue(2.0), 0);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // touches a -> b becomes LRU
  cache.Insert("c", MakeValue(3.0), 0);   // evicts b
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
}

TEST(QueryResultCacheTest, GenerationInvalidatesAndDropsStaleInserts) {
  QueryResultCache cache(8, 2);
  cache.Insert("a", MakeValue(1.0), 0);
  ASSERT_NE(cache.Lookup("a"), nullptr);
  cache.AdvanceGeneration(1);
  EXPECT_EQ(cache.Lookup("a"), nullptr);  // swap invalidated it
  EXPECT_EQ(cache.size(), 0u);            // proactively evicted
  cache.Insert("b", MakeValue(2.0), 0);   // stale tag: dropped
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  cache.Insert("b", MakeValue(2.0), 1);   // current tag: kept
  EXPECT_NE(cache.Lookup("b"), nullptr);
}

// --- LatencyHistogram ---

TEST(LatencyHistogramTest, BucketsAndPercentiles) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(3);  // bucket (2,4]
  h.Record(5000);                            // bucket (4096, 8192]
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_EQ(h.PercentileMicros(0.50), 4u);
  EXPECT_EQ(h.PercentileMicros(0.99), 4u);
  EXPECT_EQ(h.PercentileMicros(1.0), 8192u);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), (99 * 3 + 5000) / 100.0);
}

// --- PaygoServer ---

TEST(PaygoServerTest, StartStopIsIdempotentAndServesAfterStart) {
  PaygoServer server(BuildSmallSystem());
  EXPECT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Start().ok());  // idempotent
  auto scores = server.Classify("departure Toronto destination Cairo");
  ASSERT_TRUE(scores.ok()) << scores.status();
  EXPECT_FALSE(scores->empty());
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.running());
  // A stopped server rejects instead of hanging.
  EXPECT_TRUE(server.Classify("departure").status().IsFailedPrecondition());
  // And cannot be restarted (documented contract).
  EXPECT_TRUE(server.Start().IsFailedPrecondition());
}

TEST(PaygoServerTest, RejectsBeforeStart) {
  PaygoServer server(BuildSmallSystem());
  EXPECT_TRUE(server.Classify("departure").status().IsFailedPrecondition());
}

TEST(PaygoServerTest, ServedResultsMatchDirectEvaluation) {
  auto sys = BuildSmallSystem();
  const auto direct = sys->ClassifyKeywordQuery("title author journal");
  ASSERT_TRUE(direct.ok());
  PaygoServer server(std::move(sys));
  ASSERT_TRUE(server.Start().ok());
  const auto served = server.Classify("title author journal");
  ASSERT_TRUE(served.ok());
  ASSERT_EQ(served->size(), direct->size());
  for (std::size_t i = 0; i < served->size(); ++i) {
    EXPECT_EQ((*served)[i].domain, (*direct)[i].domain);
    EXPECT_DOUBLE_EQ((*served)[i].log_posterior,
                     (*direct)[i].log_posterior);
  }
}

TEST(PaygoServerTest, AdmissionControlRejectsWhenQueueSaturated) {
  ServeOptions options;
  options.num_workers = 1;
  options.queue_depth = 1;
  options.cache_capacity = 0;  // every request does real work
  options.queue_timeout_ms = 0;
  options.artificial_request_delay_us = 5000;  // hold the worker busy
  PaygoServer server(BuildSmallSystem(), options);
  ASSERT_TRUE(server.Start().ok());

  const std::uint64_t rejected =
      RunSaturationProbe(server, "departure airline", 32);
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(server.metrics().requests_rejected.load(), rejected);
  // Everything admitted (not rejected) eventually completed. On a
  // single-core box the whole burst can land before the worker first
  // runs, so as few as one request may have been admitted.
  EXPECT_GE(server.metrics().requests_completed.load(), 1u);
  EXPECT_EQ(server.metrics().requests_completed.load() + rejected, 32u);
  server.Stop();
}

TEST(PaygoServerTest, QueueWaitDeadlineShedsStaleRequests) {
  ServeOptions options;
  options.num_workers = 1;
  options.queue_depth = 16;
  options.cache_capacity = 0;
  options.queue_timeout_ms = 1;
  options.artificial_request_delay_us = 20000;  // 20ms per request
  PaygoServer server(BuildSmallSystem(), options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<Result<std::vector<DomainScore>>>> inflight;
  for (int i = 0; i < 4; ++i) {
    inflight.push_back(server.ClassifyAsync("departure airline"));
  }
  std::size_t timed_out = 0;
  for (auto& f : inflight) {
    if (f.get().status().IsDeadlineExceeded()) ++timed_out;
  }
  // Every request after the first waits >= 20ms > the 1ms budget.
  EXPECT_GE(timed_out, 3u);
  EXPECT_EQ(server.metrics().requests_timed_out.load(), timed_out);
  server.Stop();
}

TEST(PaygoServerTest, CacheHitsOnRepeatAndInvalidatesOnSwap) {
  PaygoServer server(BuildSmallSystem());
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(server.Classify("departure Toronto").ok());
  ASSERT_TRUE(server.Classify("  departure   TORONTO ").ok());  // same key
  EXPECT_EQ(server.metrics().cache_hits.load(), 1u);
  EXPECT_EQ(server.metrics().cache_misses.load(), 1u);

  // A published mutation swaps the snapshot and invalidates the cache.
  Schema extra("hotwire", {"departure airport", "destination", "fare"});
  ASSERT_TRUE(server.AddSchemaAsync(extra, {"travel"}).get().ok());
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.metrics().snapshot_swaps.load(), 1u);

  ASSERT_TRUE(server.Classify("departure toronto").ok());
  EXPECT_EQ(server.metrics().cache_hits.load(), 1u);  // unchanged: miss
  EXPECT_EQ(server.metrics().cache_misses.load(), 2u);
  // The new snapshot actually contains the added schema.
  EXPECT_EQ(server.snapshot()->corpus().size(), 7u);
  server.Stop();
}

TEST(PaygoServerTest, FailedUpdateDoesNotPublish) {
  PaygoServer server(BuildSmallSystem());
  ASSERT_TRUE(server.Start().ok());
  const auto before = server.snapshot();
  Status status =
      server
          .UpdateAsync([](IntegrationSystem&) {
            return Status::InvalidArgument("synthetic failure");
          })
          .get();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(server.generation(), 0u);
  EXPECT_EQ(server.snapshot().get(), before.get());  // same object
  EXPECT_EQ(server.metrics().updates_failed.load(), 1u);
  server.Stop();
}

TEST(PaygoServerTest, SnapshotOutlivesSwap) {
  PaygoServer server(BuildSmallSystem());
  ASSERT_TRUE(server.Start().ok());
  const auto old_snapshot = server.snapshot();
  const std::size_t old_size = old_snapshot->corpus().size();
  Schema extra("hotwire", {"departure airport", "destination", "fare"});
  ASSERT_TRUE(server.AddSchemaAsync(extra, {"travel"}).get().ok());
  // The pre-swap snapshot is still fully usable (shared ownership).
  EXPECT_EQ(old_snapshot->corpus().size(), old_size);
  const auto scores = old_snapshot->ClassifyKeywordQuery("departure");
  EXPECT_TRUE(scores.ok());
  EXPECT_NE(server.snapshot().get(), old_snapshot.get());
  server.Stop();
}

TEST(PaygoServerTest, KeywordSearchAndStructuredPathsServe) {
  auto sys = BuildSmallSystem();
  // Attach a couple of travel tuples so search returns hits.
  ASSERT_TRUE(sys
                  ->AttachTuples(0, {Tuple({"Toronto", "Cairo", "june",
                                            "july", "egyptair"})})
                  .ok());
  PaygoServer server(std::move(sys));
  ASSERT_TRUE(server.Start().ok());
  const auto answer = server.KeywordSearch("departure Toronto");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_FALSE(answer->consulted.empty());
  EXPECT_GT(server.metrics().keyword_search_latency.Count(), 0u);
  // Structured query over the travel domain of schema 0.
  const std::uint32_t travel =
      server.snapshot()->domains().DomainsOf(0)[0].first;
  const auto tuples = server.AnswerStructuredQuery(travel, {});
  ASSERT_TRUE(tuples.ok()) << tuples.status();
  EXPECT_FALSE(tuples->empty());
  server.Stop();
}

TEST(PaygoServerTest, MetricsJsonContainsTheContractFields) {
  PaygoServer server(BuildSmallSystem());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.Classify("departure").ok());
  const std::string json = server.metrics().ToJson();
  for (const char* field :
       {"\"requests_submitted\"", "\"requests_rejected\"",
        "\"cache_hit_rate\"", "\"snapshot_generation\"",
        "\"classify_latency\"", "\"p99_us\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << "\n" << json;
  }
  server.Stop();
}

// --- IntegrationSystem::Clone ---

TEST(CloneTest, CloneIsDeepAndIndependent) {
  auto sys = BuildSmallSystem();
  ASSERT_TRUE(
      sys->AttachTuples(0, {Tuple({"Toronto", "Cairo", "june", "july",
                                   "egyptair"})})
          .ok());
  auto clone = sys->Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->corpus().size(), sys->corpus().size());
  EXPECT_EQ(clone->domains().num_domains(), sys->domains().num_domains());

  // Same classification behavior...
  const auto a = sys->ClassifyKeywordQuery("departure toronto");
  const auto b = clone->ClassifyKeywordQuery("departure toronto");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].domain, (*b)[i].domain);
    EXPECT_DOUBLE_EQ((*a)[i].log_posterior, (*b)[i].log_posterior);
  }

  // ...but mutating the clone leaves the original untouched.
  const std::size_t before = sys->corpus().size();
  Schema extra("hotwire", {"departure airport", "destination", "fare"});
  ASSERT_TRUE(clone->AddSchema(extra, {"travel"}).ok());
  EXPECT_EQ(sys->corpus().size(), before);
  EXPECT_EQ(clone->corpus().size(), before + 1);
}

}  // namespace
}  // namespace paygo
