#include "eval/partition_metrics.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace paygo {
namespace {

TEST(PartitionFromModelTest, ArgMaxAndDropped) {
  DomainModel model = DomainModel::Build(
      {{0, 1}, {2}},
      {{{0, 1.0}}, {{0, 0.3}, {1, 0.7}}, {}});
  const auto p = PartitionFromModel(model);
  EXPECT_EQ(p, (std::vector<int>{0, 1, -1}));
}

TEST(PartitionFromPrimaryLabelsTest, FirstLabelWins) {
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"x"}), {"cars"});
  corpus.Add(Schema("b", {"x"}), {"movies", "cars"});  // sorted -> cars first
  corpus.Add(Schema("c", {"x"}), {"movies"});
  corpus.Add(Schema("d", {"x"}), {});
  const auto p = PartitionFromPrimaryLabels(corpus);
  EXPECT_EQ(p[0], p[1]);  // both primary 'cars'
  EXPECT_NE(p[0], p[2]);
  EXPECT_EQ(p[3], -1);
}

TEST(AdjustedRandIndexTest, IdenticalPartitionsScoreOne) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(AdjustedRandIndex(a, a), 1.0, 1e-12);
  // Relabeling does not matter.
  const std::vector<int> b = {5, 5, 9, 9, 7, 7};
  EXPECT_NEAR(AdjustedRandIndex(a, b), 1.0, 1e-12);
}

TEST(AdjustedRandIndexTest, IndependentPartitionsNearZero) {
  Rng rng(3);
  std::vector<int> a(2000), b(2000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(rng.NextBelow(5));
    b[i] = static_cast<int>(rng.NextBelow(5));
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.0, 0.03);
}

TEST(AdjustedRandIndexTest, KnownSmallExample) {
  // a = {0,0,1,1}, b = {0,1,0,1}: every same-cluster pair of a is split by
  // b and vice versa -> below chance.
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 1, 0, 1};
  EXPECT_LT(AdjustedRandIndex(a, b), 0.0);
}

TEST(AdjustedRandIndexTest, SkipsInvalidEntries) {
  const std::vector<int> a = {0, 0, 1, 1, -1};
  const std::vector<int> b = {0, 0, 1, 1, 0};
  EXPECT_NEAR(AdjustedRandIndex(a, b), 1.0, 1e-12);
}

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  const std::vector<int> a = {0, 0, 1, 1, 2};
  EXPECT_NEAR(NormalizedMutualInformation(a, a), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsNearZero) {
  Rng rng(4);
  std::vector<int> a(4000), b(4000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(rng.NextBelow(4));
    b[i] = static_cast<int>(rng.NextBelow(4));
  }
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 0.0, 0.02);
}

TEST(NmiTest, SymmetricAndBounded) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> a(200), b(200);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<int>(rng.NextBelow(6));
      b[i] = (rng.NextBernoulli(0.7)) ? a[i]
                                      : static_cast<int>(rng.NextBelow(6));
    }
    const double ab = NormalizedMutualInformation(a, b);
    EXPECT_NEAR(ab, NormalizedMutualInformation(b, a), 1e-12);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0 + 1e-12);
  }
}

TEST(PairwiseLabelScoresTest, PerfectClusteringScoresOne) {
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"x"}), {"cars"});
  corpus.Add(Schema("b", {"x"}), {"cars"});
  corpus.Add(Schema("c", {"x"}), {"movies"});
  DomainModel model = DomainModel::Build(
      {{0, 1}, {2}}, {{{0, 1.0}}, {{0, 1.0}}, {{1, 1.0}}});
  const PairwiseScores s = PairwiseLabelScores(model, corpus);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_EQ(s.pairs, 3u);
}

TEST(PairwiseLabelScoresTest, MixedClusterCosts) {
  // {a(cars), b(cars), c(movies)} all in one cluster: tp = a-b; fp = a-c,
  // b-c -> precision 1/3, recall 1.
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"x"}), {"cars"});
  corpus.Add(Schema("b", {"x"}), {"cars"});
  corpus.Add(Schema("c", {"x"}), {"movies"});
  DomainModel model = DomainModel::Build(
      {{0, 1, 2}}, {{{0, 1.0}}, {{0, 1.0}}, {{0, 1.0}}});
  const PairwiseScores s = PairwiseLabelScores(model, corpus);
  EXPECT_NEAR(s.precision, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(PairwiseLabelScoresTest, SharedLabelCountsAsSameClass) {
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"x"}), {"schools", "people"});
  corpus.Add(Schema("b", {"x"}), {"people"});
  DomainModel model =
      DomainModel::Build({{0, 1}}, {{{0, 1.0}}, {{0, 1.0}}});
  const PairwiseScores s = PairwiseLabelScores(model, corpus);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
}

}  // namespace
}  // namespace paygo
