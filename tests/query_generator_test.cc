#include "synth/query_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace paygo {
namespace {

/// Two labels with disjoint vocabularies plus a shared generic term.
SchemaCorpus MakeCorpus() {
  SchemaCorpus corpus;
  corpus.Add(Schema("c0", {"make", "model", "name"}), {"cars"});
  corpus.Add(Schema("c1", {"make", "mileage", "name"}), {"cars"});
  corpus.Add(Schema("c2", {"make", "model", "mileage"}), {"cars"});
  corpus.Add(Schema("m0", {"director", "cast", "name"}), {"movies"});
  corpus.Add(Schema("m1", {"director", "cast"}), {"movies"});
  return corpus;
}

struct Built {
  SchemaCorpus corpus = MakeCorpus();
  Tokenizer tok;
  Lexicon lex = Lexicon::Build(corpus, tok);
};

TEST(QueryGeneratorTest, BuildsWithBothLabelsTargetable) {
  Built b;
  const auto gen = QueryGenerator::Build(b.corpus, b.lex, {});
  ASSERT_TRUE(gen.ok()) << gen.status();
  EXPECT_EQ(gen->targetable_labels().size(), 2u);
}

TEST(QueryGeneratorTest, FrequencyFilterDropsRareTerms) {
  Built b;
  QueryGeneratorOptions opts;
  opts.min_label_fraction = 0.5;
  const auto gen = QueryGenerator::Build(b.corpus, b.lex, opts);
  ASSERT_TRUE(gen.ok());
  // For cars (3 schemas): make 3/3, model 2/3, mileage 2/3, name 2/3 pass;
  // none fail. For movies (2 schemas): director 2/2, cast 2/2, name 1/2
  // passes exactly at 0.5.
  const auto& movies = gen->TermDistribution("movies");
  std::map<std::string, double> dist(movies.begin(), movies.end());
  EXPECT_TRUE(dist.count("director"));
  EXPECT_TRUE(dist.count("cast"));
  EXPECT_TRUE(dist.count("name"));
  EXPECT_FALSE(dist.count("make"));  // zero frequency in movies

  QueryGeneratorOptions strict;
  strict.min_label_fraction = 0.6;
  const auto gen2 = QueryGenerator::Build(b.corpus, b.lex, strict);
  ASSERT_TRUE(gen2.ok());
  const auto& movies2 = gen2->TermDistribution("movies");
  std::map<std::string, double> dist2(movies2.begin(), movies2.end());
  EXPECT_FALSE(dist2.count("name"));  // 1/2 < 0.6
}

TEST(QueryGeneratorTest, DistributionsAreNormalized) {
  Built b;
  const auto gen = QueryGenerator::Build(b.corpus, b.lex, {});
  ASSERT_TRUE(gen.ok());
  for (const std::string& label : gen->targetable_labels()) {
    double total = 0.0;
    for (const auto& [term, p] : gen->TermDistribution(label)) {
      EXPECT_GT(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(QueryGeneratorTest, DiscriminativeTermsOutweighGenericOnes) {
  Built b;
  const auto gen = QueryGenerator::Build(b.corpus, b.lex, {});
  ASSERT_TRUE(gen.ok());
  // Within cars, "make" (cars-only) must be likelier than "name"
  // (shared with movies) — the lambda weighting of Section 6.1.3.
  std::map<std::string, double> cars;
  for (const auto& [t, p] : gen->TermDistribution("cars")) cars[t] = p;
  ASSERT_TRUE(cars.count("make"));
  ASSERT_TRUE(cars.count("name"));
  EXPECT_GT(cars["make"], cars["name"]);
}

TEST(QueryGeneratorTest, GeneratesRequestedKeywordCount) {
  Built b;
  const auto gen = QueryGenerator::Build(b.corpus, b.lex, {});
  ASSERT_TRUE(gen.ok());
  Rng rng(5);
  for (std::size_t k = 1; k <= 10; ++k) {
    const GeneratedQuery q = gen->Generate(k, rng);
    EXPECT_EQ(q.keywords.size(), k);
    EXPECT_FALSE(q.target_label.empty());
  }
}

TEST(QueryGeneratorTest, KeywordsComeFromTargetDistribution) {
  Built b;
  const auto gen = QueryGenerator::Build(b.corpus, b.lex, {});
  ASSERT_TRUE(gen.ok());
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const GeneratedQuery q = gen->Generate(3, rng);
    std::map<std::string, double> dist;
    for (const auto& [t, p] : gen->TermDistribution(q.target_label)) {
      dist[t] = p;
    }
    for (const std::string& kw : q.keywords) {
      EXPECT_TRUE(dist.count(kw)) << kw << " for " << q.target_label;
    }
  }
}

TEST(QueryGeneratorTest, LabelSamplingProportionalToSchemaCount) {
  Built b;
  const auto gen = QueryGenerator::Build(b.corpus, b.lex, {});
  ASSERT_TRUE(gen.ok());
  Rng rng(7);
  int cars = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (gen->Generate(1, rng).target_label == "cars") ++cars;
  }
  // cars has 3 of 5 schemas.
  EXPECT_NEAR(static_cast<double>(cars) / n, 0.6, 0.03);
}

TEST(QueryGeneratorTest, DeterministicGivenSeed) {
  Built b;
  const auto gen = QueryGenerator::Build(b.corpus, b.lex, {});
  ASSERT_TRUE(gen.ok());
  Rng r1(9), r2(9);
  for (int i = 0; i < 20; ++i) {
    const GeneratedQuery a = gen->Generate(4, r1);
    const GeneratedQuery b2 = gen->Generate(4, r2);
    EXPECT_EQ(a.target_label, b2.target_label);
    EXPECT_EQ(a.keywords, b2.keywords);
  }
}

TEST(QueryGeneratorTest, UnlabeledCorpusRejected) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s", {"alpha"}), {});
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  EXPECT_TRUE(QueryGenerator::Build(corpus, lex, {})
                  .status()
                  .IsFailedPrecondition());
}

TEST(QueryGeneratorTest, MismatchedLexiconRejected) {
  Built b;
  SchemaCorpus other;
  other.Add(Schema("s", {"alpha"}), {"l"});
  EXPECT_TRUE(QueryGenerator::Build(other, b.lex, {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paygo
