#include <gtest/gtest.h>

#include "core/integration_system.h"

namespace paygo {
namespace {

/// Facade-level refinement: AddSchema and ApplyFeedback on a live system.

SchemaCorpus BaseCorpus() {
  SchemaCorpus corpus("base");
  corpus.Add(Schema("t1", {"departure airport", "destination airport",
                           "airline"}),
             {"travel"});
  corpus.Add(Schema("t2", {"departure airport", "airline", "passengers"}),
             {"travel"});
  corpus.Add(Schema("b1", {"title", "authors", "journal"}), {"bib"});
  corpus.Add(Schema("b2", {"title", "authors", "publisher"}), {"bib"});
  return corpus;
}

SystemOptions Options() {
  SystemOptions opts;
  opts.hac.tau_c_sim = 0.25;
  opts.assignment.tau_c_sim = 0.25;
  return opts;
}

TEST(SystemRefinementTest, AddSchemaJoinsDomainAndServesQueries) {
  auto built = IntegrationSystem::Build(BaseCorpus(), Options());
  ASSERT_TRUE(built.ok());
  IntegrationSystem& sys = **built;
  const std::uint32_t travel = sys.domains().DomainsOf(0)[0].first;
  const std::size_t domains_before = sys.domains().num_domains();

  const auto added = sys.AddSchema(
      Schema("t3", {"departure airport", "destination airport", "class"}),
      {"travel"});
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_FALSE(added->created_new_domain);
  EXPECT_EQ(added->memberships[0].first, travel);
  EXPECT_EQ(sys.corpus().size(), 5u);
  EXPECT_EQ(sys.domains().num_domains(), domains_before);
  EXPECT_EQ(sys.corpus().labels(4), (std::vector<std::string>{"travel"}));

  // Derived state refreshed: the classifier covers the grown domain and
  // the mediated schema includes the newcomer's attributes.
  const auto ranking = sys.ClassifyKeywordQuery("departure airline class");
  ASSERT_TRUE(ranking.ok());
  EXPECT_EQ((*ranking)[0].domain, travel);
  EXPECT_GE(sys.mediation(travel).members.size(), 3u);
  // The new source can answer structured queries immediately.
  ASSERT_TRUE(sys.AttachTuples(4, {Tuple({"YYZ", "CAI", "economy"})}).ok());
  const auto answers = sys.AnswerStructuredQuery(travel, {});
  ASSERT_TRUE(answers.ok());
  EXPECT_GE(answers->size(), 1u);
}

TEST(SystemRefinementTest, AddSchemaOpensNewDomain) {
  auto built = IntegrationSystem::Build(BaseCorpus(), Options());
  ASSERT_TRUE(built.ok());
  IntegrationSystem& sys = **built;
  const std::size_t before = sys.domains().num_domains();
  const auto added = sys.AddSchema(
      Schema("weather", {"barometric pressure", "wind gust",
                         "dew point"}));
  ASSERT_TRUE(added.ok());
  EXPECT_TRUE(added->created_new_domain);
  EXPECT_EQ(sys.domains().num_domains(), before + 1);
}

TEST(SystemRefinementTest, ApplyExplicitFeedbackMovesSchema) {
  auto built = IntegrationSystem::Build(BaseCorpus(), Options());
  ASSERT_TRUE(built.ok());
  IntegrationSystem& sys = **built;
  const std::uint32_t travel_before = sys.domains().DomainsOf(0)[0].first;
  ASSERT_EQ(sys.domains().DomainsOf(1)[0].first, travel_before);

  // User insists t2 belongs with the bibliography sources.
  FeedbackStore store;
  ASSERT_TRUE(store.RecordCorrection(/*schema=*/1, /*wrong=*/0,
                                     /*right=*/2)
                  .ok());
  ASSERT_TRUE(sys.ApplyFeedback(store).ok());
  EXPECT_EQ(sys.domains().DomainsOf(1)[0].first,
            sys.domains().DomainsOf(2)[0].first);
  EXPECT_NE(sys.domains().DomainsOf(1)[0].first,
            sys.domains().DomainsOf(0)[0].first);
  // Mediation and classifier still functional after the refinement.
  EXPECT_TRUE(sys.ClassifyKeywordQuery("title authors").ok());
}

TEST(SystemRefinementTest, ApplyImplicitFeedbackReranks) {
  // Two identical schemas -> two tied domains; clicks break the tie.
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"alpha", "beta"}));
  corpus.Add(Schema("b", {"gamma", "delta"}));
  SystemOptions opts;
  opts.hac.tau_c_sim = 0.9;
  auto built = IntegrationSystem::Build(corpus, opts);
  ASSERT_TRUE(built.ok());
  IntegrationSystem& sys = **built;
  const auto before = sys.ClassifyKeywordQuery("");
  ASSERT_TRUE(before.ok());
  const std::uint32_t loser = (*before)[1].domain;

  FeedbackStore store;
  for (int i = 0; i < 20; ++i) {
    store.RecordImpression((*before)[0].domain);
    store.RecordImpression(loser);
    store.RecordClick(loser);
  }
  ASSERT_TRUE(sys.ApplyFeedback(store).ok());
  const auto after = sys.ClassifyKeywordQuery("");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)[0].domain, loser);
}

TEST(SystemRefinementTest, ConflictingFeedbackSurfacesAsStatus) {
  auto built = IntegrationSystem::Build(BaseCorpus(), Options());
  ASSERT_TRUE(built.ok());
  FeedbackStore store;
  ASSERT_TRUE(store.RecordMustLink(0, 1).ok());
  ASSERT_TRUE(store.RecordCannotLink(0, 1).ok());
  EXPECT_TRUE((*built)->ApplyFeedback(store).IsInvalidArgument());
}

TEST(SystemRefinementTest, RebuildFromScratchRecoversUnseenTerms) {
  auto built = IntegrationSystem::Build(BaseCorpus(), Options());
  ASSERT_TRUE(built.ok());
  IntegrationSystem& sys = **built;
  const std::size_t dim_before = sys.lexicon().dim();

  // Two weather sources arrive; their vocabulary is outside the frozen
  // lexicon, so incrementally they land in separate singleton domains.
  const auto r1 = sys.AddSchema(
      Schema("w1", {"barometric pressure", "wind gust", "dew point"}));
  const auto r2 = sys.AddSchema(
      Schema("w2", {"barometric pressure", "wind gust", "humidity"}));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r1->unseen_term_fraction, 0.9);
  EXPECT_NE(sys.domains().DomainsOf(4)[0].first,
            sys.domains().DomainsOf(5)[0].first);

  // A full rebuild grows the lexicon and clusters them together.
  ASSERT_TRUE(sys.RebuildFromScratch().ok());
  EXPECT_GT(sys.lexicon().dim(), dim_before);
  EXPECT_EQ(sys.domains().DomainsOf(4)[0].first,
            sys.domains().DomainsOf(5)[0].first);
  // Classifier works over the new feature space.
  const auto ranking = sys.ClassifyKeywordQuery("wind gust pressure");
  ASSERT_TRUE(ranking.ok());
  EXPECT_EQ((*ranking)[0].domain, sys.domains().DomainsOf(4)[0].first);
}

TEST(SystemRefinementTest, RebuildPreservesAttachedTuples) {
  auto built = IntegrationSystem::Build(BaseCorpus(), Options());
  ASSERT_TRUE(built.ok());
  IntegrationSystem& sys = **built;
  ASSERT_TRUE(
      sys.AttachTuples(0, {Tuple({"YYZ", "CAI", "EgyptAir"})}).ok());
  ASSERT_TRUE(sys.RebuildFromScratch().ok());
  const std::uint32_t travel = sys.domains().DomainsOf(0)[0].first;
  const auto answers = sys.AnswerStructuredQuery(travel, {});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST(SystemRefinementTest, AddThenFeedbackComposes) {
  auto built = IntegrationSystem::Build(BaseCorpus(), Options());
  ASSERT_TRUE(built.ok());
  IntegrationSystem& sys = **built;
  ASSERT_TRUE(sys.AddSchema(Schema("t3", {"departure airport", "airline"}),
                            {"travel"})
                  .ok());
  FeedbackStore store;
  ASSERT_TRUE(store.RecordCorrection(/*schema=*/4, /*wrong=*/0,
                                     /*right=*/2)
                  .ok());
  ASSERT_TRUE(sys.ApplyFeedback(store).ok());
  EXPECT_EQ(sys.domains().DomainsOf(4)[0].first,
            sys.domains().DomainsOf(2)[0].first);
}

}  // namespace
}  // namespace paygo
