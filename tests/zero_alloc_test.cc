/// \file zero_alloc_test.cc
/// \brief Steady-state allocation accounting for the classify hot path.
///
/// The test binary replaces global operator new/delete with counting
/// versions gated on a thread_local flag, so only allocations made by the
/// measuring thread inside an AllocationProbe scope are counted — gtest
/// internals and background threads never pollute the count. The
/// guarantees pinned here:
///
///  * ClassifyInto / ClassifyBatchInto with reused scratch+output buffers
///    perform EXACTLY ZERO heap allocations in steady state (after one
///    warmup call grows every buffer to its high-water mark);
///  * the convenience Classify() wrapper allocates exactly once per call —
///    the returned vector's buffer, which by-value semantics make
///    unavoidable — and nothing else;
///  * DynamicBitset::AppendSetBits into a warm vector allocates nothing.
///
/// This file is part of the TSan gate (tools/ci.sh): the counting hooks
/// are thread_local, so they stay race-free under concurrent allocation.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "classify/naive_bayes.h"
#include "util/bitset.h"
#include "util/random.h"

namespace {

thread_local bool t_counting = false;
thread_local std::size_t t_allocations = 0;

void CountAllocation() {
  if (t_counting) ++t_allocations;
}

}  // namespace

// Counting global allocation hooks. Every replaceable form funnels through
// malloc/free so sized and array deletes need no bookkeeping of their own.
void* operator new(std::size_t size) {
  CountAllocation();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  CountAllocation();
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// GCC pairs free() with the replaced operator new and warns about the
// mismatch; every new above funnels through malloc/aligned_alloc, both of
// which glibc's free() accepts, so the pairing is correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace paygo {
namespace {

/// Counts this thread's heap allocations while alive.
class AllocationProbe {
 public:
  AllocationProbe() {
    t_allocations = 0;
    t_counting = true;
  }
  ~AllocationProbe() { t_counting = false; }
  std::size_t count() const { return t_allocations; }
};

constexpr std::size_t kDim = 300;
constexpr std::size_t kDomains = 24;

NaiveBayesClassifier MakeClassifier() {
  Rng rng(99);
  std::vector<DomainConditionals> conds(kDomains);
  for (auto& c : conds) {
    c.prior = 0.01 + rng.NextDouble();
    c.q1.resize(kDim);
    for (double& q : c.q1) q = 0.001 + 0.9 * rng.NextDouble();
  }
  return NaiveBayesClassifier::FromConditionals(
      std::move(conds), std::vector<bool>(kDomains, false), {});
}

std::vector<DynamicBitset> MakeQueries(std::size_t count) {
  Rng rng(123);
  std::vector<DynamicBitset> queries;
  for (std::size_t i = 0; i < count; ++i) {
    DynamicBitset q(kDim);
    for (std::size_t k = 0; k < 1 + i % 8; ++k) q.Set(rng.NextBelow(kDim));
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(ZeroAllocTest, ProbeSeesVectorGrowth) {
  // Sanity-check the hook itself before trusting any zero below.
  AllocationProbe probe;
  std::vector<int>* v = new std::vector<int>();
  v->reserve(100);
  delete v;
  EXPECT_GE(probe.count(), 2u);
}

TEST(ZeroAllocTest, ClassifyIntoSteadyStateIsZeroAlloc) {
  const NaiveBayesClassifier clf = MakeClassifier();
  const std::vector<DynamicBitset> queries = MakeQueries(16);

  ClassifyScratch scratch;
  std::vector<DomainScore> out;
  // Warmup: grows scratch.set_bits and out to their high-water marks and
  // runs every lazy static init (registry counters) on the path.
  for (const DynamicBitset& q : queries) clf.ClassifyInto(q, &scratch, &out);

  AllocationProbe probe;
  for (int round = 0; round < 10; ++round) {
    for (const DynamicBitset& q : queries) {
      clf.ClassifyInto(q, &scratch, &out);
    }
  }
  EXPECT_EQ(probe.count(), 0u)
      << "steady-state ClassifyInto must not touch the heap";
  ASSERT_EQ(out.size(), kDomains);  // it did real work
}

TEST(ZeroAllocTest, ClassifyBatchIntoSteadyStateIsZeroAlloc) {
  const NaiveBayesClassifier clf = MakeClassifier();
  const std::vector<DynamicBitset> queries = MakeQueries(64);

  ClassifyScratch scratch;
  std::vector<std::vector<DomainScore>> out;
  clf.ClassifyBatchInto(queries, &scratch, &out);  // warmup

  AllocationProbe probe;
  for (int round = 0; round < 10; ++round) {
    clf.ClassifyBatchInto(queries, &scratch, &out);
  }
  EXPECT_EQ(probe.count(), 0u)
      << "steady-state ClassifyBatchInto must not touch the heap";
  ASSERT_EQ(out.size(), queries.size());
  ASSERT_EQ(out[0].size(), kDomains);
}

TEST(ZeroAllocTest, BatchIntoHandlesShrinkingBatchWithoutAllocating) {
  const NaiveBayesClassifier clf = MakeClassifier();
  const std::vector<DynamicBitset> queries = MakeQueries(64);

  ClassifyScratch scratch;
  std::vector<std::vector<DomainScore>> out;
  clf.ClassifyBatchInto(queries, &scratch, &out);  // warm at the max size

  AllocationProbe probe;
  for (std::size_t len : {64u, 7u, 1u, 32u}) {
    clf.ClassifyBatchInto(
        std::span<const DynamicBitset>(queries.data(), len), &scratch, &out);
    ASSERT_EQ(out.size(), len);
  }
  EXPECT_EQ(probe.count(), 0u)
      << "batch sizes at or below the high-water mark must reuse capacity";
}

TEST(ZeroAllocTest, ClassifyWrapperAllocatesOnlyTheResultVector) {
  const NaiveBayesClassifier clf = MakeClassifier();
  const std::vector<DynamicBitset> queries = MakeQueries(8);
  for (const DynamicBitset& q : queries) clf.Classify(q);  // warmup

  for (const DynamicBitset& q : queries) {
    AllocationProbe probe;
    const std::vector<DomainScore> scores = clf.Classify(q);
    // By-value return forces one buffer; anything more is a regression in
    // the thread_local scratch reuse.
    EXPECT_EQ(probe.count(), 1u);
    ASSERT_EQ(scores.size(), kDomains);
  }
}

TEST(ZeroAllocTest, AppendSetBitsIsZeroAllocWhenWarm) {
  const std::vector<DynamicBitset> queries = MakeQueries(16);
  std::vector<std::size_t> bits;
  for (const DynamicBitset& q : queries) {
    bits.clear();
    q.AppendSetBits(&bits);  // warmup to the high-water mark
  }

  AllocationProbe probe;
  for (const DynamicBitset& q : queries) {
    bits.clear();
    q.AppendSetBits(&bits);
  }
  EXPECT_EQ(probe.count(), 0u);
}

}  // namespace
}  // namespace paygo
