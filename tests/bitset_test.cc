#include "util/bitset.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace paygo {
namespace {

TEST(BitsetTest, StartsAllZero) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitsetTest, SetAndClearAcrossWordBoundaries) {
  DynamicBitset b(200);
  for (std::size_t i : {0u, 63u, 64u, 127u, 128u, 199u}) {
    b.Set(i);
    EXPECT_TRUE(b.Test(i));
  }
  EXPECT_EQ(b.Count(), 6u);
  b.Set(64, false);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 5u);
}

TEST(BitsetTest, SetAllRespectsSize) {
  DynamicBitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
}

TEST(BitsetTest, ResetClearsEverything) {
  DynamicBitset b(65);
  b.SetAll();
  b.Reset();
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, AndOrCounts) {
  DynamicBitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(3);
  EXPECT_EQ(DynamicBitset::AndCount(a, b), 2u);
  EXPECT_EQ(DynamicBitset::OrCount(a, b), 4u);
}

TEST(BitsetTest, JaccardMatchesDefinition) {
  DynamicBitset a(10), b(10);
  a.Set(0);
  a.Set(1);
  b.Set(1);
  b.Set(2);
  b.Set(3);
  // intersection 1, union 4.
  EXPECT_DOUBLE_EQ(DynamicBitset::Jaccard(a, b), 0.25);
}

TEST(BitsetTest, JaccardOfEmptyVectorsIsZero) {
  DynamicBitset a(10), b(10);
  EXPECT_DOUBLE_EQ(DynamicBitset::Jaccard(a, b), 0.0);
}

TEST(BitsetTest, JaccardIdenticalIsOne) {
  DynamicBitset a(10);
  a.Set(4);
  a.Set(7);
  EXPECT_DOUBLE_EQ(DynamicBitset::Jaccard(a, a), 1.0);
}

TEST(BitsetTest, InPlaceAndOr) {
  DynamicBitset a(10), b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  DynamicBitset and_copy = a;
  and_copy &= b;
  EXPECT_EQ(and_copy.SetBits(), (std::vector<std::size_t>{2}));
  DynamicBitset or_copy = a;
  or_copy |= b;
  EXPECT_EQ(or_copy.SetBits(), (std::vector<std::size_t>{1, 2, 3}));
}

TEST(BitsetTest, SetBitsEnumeratesAscending) {
  DynamicBitset b(300);
  b.Set(299);
  b.Set(0);
  b.Set(64);
  EXPECT_EQ(b.SetBits(), (std::vector<std::size_t>{0, 64, 299}));
}

TEST(BitsetTest, EqualityIsStructural) {
  DynamicBitset a(64), b(64), c(65);
  a.Set(5);
  b.Set(5);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

/// Property: Count() agrees with SetBits().size() on random vectors, and
/// And/Or counts agree with naive bit loops.
TEST(BitsetPropertyTest, CountsAgreeWithNaiveOnRandomVectors) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.NextBelow(500);
    DynamicBitset a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.NextBernoulli(0.3)) a.Set(i);
      if (rng.NextBernoulli(0.3)) b.Set(i);
    }
    std::size_t and_naive = 0, or_naive = 0, count_naive = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (a.Test(i)) ++count_naive;
      if (a.Test(i) && b.Test(i)) ++and_naive;
      if (a.Test(i) || b.Test(i)) ++or_naive;
    }
    EXPECT_EQ(a.Count(), count_naive);
    EXPECT_EQ(a.SetBits().size(), count_naive);
    EXPECT_EQ(DynamicBitset::AndCount(a, b), and_naive);
    EXPECT_EQ(DynamicBitset::OrCount(a, b), or_naive);
  }
}

}  // namespace
}  // namespace paygo
