#include "feedback/consistency.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

/// Three sources over one mediated attribute; sources 0 and 1 share
/// values, source 2 is from another world.
struct Fixture {
  SchemaCorpus corpus;
  DomainMediation mediation;
  std::vector<std::unique_ptr<DataSource>> sources;

  Fixture() {
    corpus.Add(Schema("s0", {"make"}), {});
    corpus.Add(Schema("s1", {"car make"}), {});
    corpus.Add(Schema("s2", {"genus"}), {});
    mediation.mediated.attributes.push_back(
        {"make", {"car make", "genus", "make"}, 3.0});
    mediation.members = {{0, 1.0}, {1, 1.0}, {2, 1.0}};
    for (std::uint32_t i = 0; i < 3; ++i) {
      ProbabilisticMapping pm;
      pm.schema_id = i;
      pm.alternatives = {{{0}, 1.0}};
      mediation.mappings.push_back(pm);
      sources.push_back(
          std::make_unique<DataSource>(i, corpus.schema(i)));
    }
    for (const char* v : {"honda", "toyota", "ford"}) {
      (void)sources[0]->AddTuple(Tuple({v}));
    }
    for (const char* v : {"honda", "Toyota", "nissan"}) {
      (void)sources[1]->AddTuple(Tuple({v}));
    }
    for (const char* v : {"quercus", "acer", "pinus"}) {
      (void)sources[2]->AddTuple(Tuple({v}));
    }
  }

  std::vector<const DataSource*> Ptrs() const {
    std::vector<const DataSource*> out;
    for (const auto& s : sources) out.push_back(s.get());
    return out;
  }
};

TEST(ConsistencyTest, OutlierSourceFlaggedAsSuspect) {
  Fixture fx;
  const auto report = AssessDomainConsistency(fx.mediation, fx.Ptrs());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->sources.size(), 3u);
  // Sources 0 and 1 share "honda"/"toyota" (case-insensitive): consistent.
  EXPECT_TRUE(report->sources[0].has_evidence);
  EXPECT_GT(report->sources[0].consistency, 0.5);
  EXPECT_FALSE(report->sources[0].suspect);
  EXPECT_GT(report->sources[1].consistency, 0.5);
  // Source 2 shares nothing: suspect.
  EXPECT_TRUE(report->sources[2].has_evidence);
  EXPECT_DOUBLE_EQ(report->sources[2].consistency, 0.0);
  EXPECT_TRUE(report->sources[2].suspect);
  EXPECT_EQ(report->num_suspects, 1u);
}

TEST(ConsistencyTest, ExactValues) {
  Fixture fx;
  const auto report = AssessDomainConsistency(fx.mediation, fx.Ptrs());
  ASSERT_TRUE(report.ok());
  // Source 0: 2 of 3 values appear elsewhere -> 2/3.
  EXPECT_NEAR(report->sources[0].consistency, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(report->sources[1].consistency, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(report->domain_consistency, (2.0 / 3 + 2.0 / 3 + 0.0) / 3,
              1e-9);
}

TEST(ConsistencyTest, SourcesWithoutDataHaveNoEvidence) {
  Fixture fx;
  auto ptrs = fx.Ptrs();
  ptrs[1] = nullptr;
  const auto report = AssessDomainConsistency(fx.mediation, ptrs);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->sources[1].has_evidence);
  EXPECT_FALSE(report->sources[1].suspect);
}

TEST(ConsistencyTest, SingleSourceAttributeContributesNothing) {
  // Only one source populates the attribute: no cross-source evidence.
  SchemaCorpus corpus;
  corpus.Add(Schema("solo", {"make"}), {});
  DomainMediation mediation;
  mediation.mediated.attributes.push_back({"make", {"make"}, 1.0});
  mediation.members = {{0, 1.0}};
  ProbabilisticMapping pm;
  pm.schema_id = 0;
  pm.alternatives = {{{0}, 1.0}};
  mediation.mappings.push_back(pm);
  DataSource src(0, corpus.schema(0));
  ASSERT_TRUE(src.AddTuple(Tuple({"honda"})).ok());
  const auto report =
      AssessDomainConsistency(mediation, {&src});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->sources[0].has_evidence);
  EXPECT_EQ(report->num_suspects, 0u);
}

TEST(ConsistencyTest, InvalidThresholdRejected) {
  Fixture fx;
  ConsistencyOptions opts;
  opts.suspect_threshold = 1.5;
  EXPECT_TRUE(AssessDomainConsistency(fx.mediation, fx.Ptrs(), opts)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paygo
