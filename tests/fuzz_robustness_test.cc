#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "persist/model_io.h"
#include "schema/corpus_io.h"
#include "text/porter_stemmer.h"
#include "text/term_similarity.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace paygo {
namespace {

/// Deterministic fuzzing of every parser and text routine: arbitrary byte
/// strings must never crash, and outputs must satisfy their documented
/// invariants. (No sanitizer needed to make these valuable — out-of-range
/// indexing and unvalidated parses fail loudly under the assertions.)

std::string RandomBytes(Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t len = rng.NextBelow(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return s;
}

std::string RandomPrintable(Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t len = rng.NextBelow(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(32 + rng.NextBelow(95)));
  }
  return s;
}

TEST(FuzzTest, TokenizerNeverCrashesAndCanonicalizes) {
  Rng rng(9001);
  Tokenizer tok;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string input = RandomBytes(rng, 64);
    const auto terms = tok.Tokenize(input);
    for (const std::string& t : terms) {
      EXPECT_GE(t.size(), tok.options().min_term_length);
      for (char c : t) {
        // Canonical form: no upper-case ASCII survives.
        EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)));
      }
    }
  }
}

TEST(FuzzTest, TermSimilaritiesStayInUnitInterval) {
  Rng rng(9002);
  for (auto kind :
       {TermSimilarityKind::kLcs, TermSimilarityKind::kStem,
        TermSimilarityKind::kExact, TermSimilarityKind::kLevenshtein,
        TermSimilarityKind::kJaroWinkler}) {
    TermSimilarity sim(kind);
    for (int trial = 0; trial < 500; ++trial) {
      const std::string a = RandomBytes(rng, 24);
      const std::string b = RandomBytes(rng, 24);
      const double s = sim.Compute(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
      EXPECT_NEAR(s, sim.Compute(b, a), 1e-12);  // symmetry
      if (!a.empty()) {
        EXPECT_NEAR(sim.Compute(a, a), 1.0, 1e-12);  // reflexivity
      }
    }
  }
}

TEST(FuzzTest, PorterStemmerNeverGrowsWordsOrCrashes) {
  Rng rng(9003);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string word;
    const std::size_t len = rng.NextBelow(20);
    for (std::size_t i = 0; i < len; ++i) {
      word.push_back(static_cast<char>('a' + rng.NextBelow(26)));
    }
    const std::string stem = PorterStem(word);
    EXPECT_LE(stem.size(), word.size() + 1);  // step 1b may append 'e'
    // (Porter is not idempotent on arbitrary letter soup — only the
    // no-crash and bounded-growth invariants hold universally.)
    EXPECT_FALSE(PorterStem(stem).size() > stem.size() + 1);
  }
}

TEST(FuzzTest, CorpusParserNeverCrashesAndErrorsAreStatuses) {
  Rng rng(9004);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::string text = RandomPrintable(rng, 200);
    const auto result = ParseCorpus(text);
    if (result.ok()) {
      // Whatever parsed must serialize and re-parse to the same size.
      const auto round = ParseCorpus(SerializeCorpus(*result));
      ASSERT_TRUE(round.ok());
      EXPECT_EQ(round->size(), result->size());
    }
  }
}

TEST(FuzzTest, ModelParsersNeverCrash) {
  Rng rng(9005);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::string text = RandomPrintable(rng, 200);
    (void)ParseDomainModel(text);
    (void)ParseConditionals(text);
    (void)ParseDomainModel("paygo-model v1\n" + text);
    (void)ParseConditionals("paygo-classifier v1\n" + text);
  }
}

TEST(FuzzTest, MutatedSnapshotsFailGracefully) {
  // Take a valid snapshot and flip bytes: loading must either succeed or
  // return a Status, never crash, and never mis-size the corpus.
  SystemOptions options;
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"make", "model"}));
  corpus.Add(Schema("b", {"title", "authors"}));
  auto sys = IntegrationSystem::Build(corpus, options);
  ASSERT_TRUE(sys.ok());
  const std::string path = ::testing::TempDir() + "/paygo_fuzz_snapshot.txt";
  ASSERT_TRUE(SaveSnapshot(**sys, path).ok());
  std::string original;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    original = buf.str();
  }
  Rng rng(9006);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = original;
    const std::size_t flips = 1 + rng.NextBelow(5);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] =
          static_cast<char>(32 + rng.NextBelow(95));
    }
    std::ofstream out(path);
    out << mutated;
    out.close();
    const auto loaded = LoadSnapshot(path, options);
    if (loaded.ok()) {
      EXPECT_EQ((*loaded)->corpus().size(),
                (*loaded)->domains().num_schemas());
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paygo
