#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/hac.h"
#include "persist/model_io.h"
#include "schema/corpus_io.h"
#include "text/porter_stemmer.h"
#include "text/similarity_index.h"
#include "text/term_similarity.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace paygo {
namespace {

/// Deterministic fuzzing of every parser and text routine: arbitrary byte
/// strings must never crash, and outputs must satisfy their documented
/// invariants. (No sanitizer needed to make these valuable — out-of-range
/// indexing and unvalidated parses fail loudly under the assertions.)

std::string RandomBytes(Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t len = rng.NextBelow(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return s;
}

std::string RandomPrintable(Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t len = rng.NextBelow(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(32 + rng.NextBelow(95)));
  }
  return s;
}

TEST(FuzzTest, TokenizerNeverCrashesAndCanonicalizes) {
  Rng rng(9001);
  Tokenizer tok;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string input = RandomBytes(rng, 64);
    const auto terms = tok.Tokenize(input);
    for (const std::string& t : terms) {
      EXPECT_GE(t.size(), tok.options().min_term_length);
      for (char c : t) {
        // Canonical form: no upper-case ASCII survives.
        EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)));
      }
    }
  }
}

TEST(FuzzTest, TermSimilaritiesStayInUnitInterval) {
  Rng rng(9002);
  for (auto kind :
       {TermSimilarityKind::kLcs, TermSimilarityKind::kStem,
        TermSimilarityKind::kExact, TermSimilarityKind::kLevenshtein,
        TermSimilarityKind::kJaroWinkler}) {
    TermSimilarity sim(kind);
    for (int trial = 0; trial < 500; ++trial) {
      const std::string a = RandomBytes(rng, 24);
      const std::string b = RandomBytes(rng, 24);
      const double s = sim.Compute(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
      EXPECT_NEAR(s, sim.Compute(b, a), 1e-12);  // symmetry
      if (!a.empty()) {
        EXPECT_NEAR(sim.Compute(a, a), 1.0, 1e-12);  // reflexivity
      }
    }
  }
}

TEST(FuzzTest, PorterStemmerNeverGrowsWordsOrCrashes) {
  Rng rng(9003);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string word;
    const std::size_t len = rng.NextBelow(20);
    for (std::size_t i = 0; i < len; ++i) {
      word.push_back(static_cast<char>('a' + rng.NextBelow(26)));
    }
    const std::string stem = PorterStem(word);
    EXPECT_LE(stem.size(), word.size() + 1);  // step 1b may append 'e'
    // (Porter is not idempotent on arbitrary letter soup — only the
    // no-crash and bounded-growth invariants hold universally.)
    EXPECT_FALSE(PorterStem(stem).size() > stem.size() + 1);
  }
}

TEST(FuzzTest, CorpusParserNeverCrashesAndErrorsAreStatuses) {
  Rng rng(9004);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::string text = RandomPrintable(rng, 200);
    const auto result = ParseCorpus(text);
    if (result.ok()) {
      // Whatever parsed must serialize and re-parse to the same size.
      const auto round = ParseCorpus(SerializeCorpus(*result));
      ASSERT_TRUE(round.ok());
      EXPECT_EQ(round->size(), result->size());
    }
  }
}

TEST(FuzzTest, ModelParsersNeverCrash) {
  Rng rng(9005);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::string text = RandomPrintable(rng, 200);
    (void)ParseDomainModel(text);
    (void)ParseConditionals(text);
    (void)ParseDomainModel("paygo-model v1\n" + text);
    (void)ParseConditionals("paygo-classifier v1\n" + text);
  }
}

TEST(FuzzTest, ParallelClusteringMatchesSerialOnRandomCorpora) {
  // Differential fuzz of the parallel clustering core: random feature
  // matrices (varying density, size, and linkage) must cluster bit-
  // identically at any thread count. Failures print the trial seed so the
  // case can be replayed in isolation.
  Rng meta(9007);
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint64_t seed = 9100 + trial;
    Rng rng(seed);
    const std::size_t n = 20 + rng.NextBelow(80);
    const std::size_t dim = 30 + rng.NextBelow(90);
    const double density = 0.05 + 0.4 * rng.NextDouble();
    std::vector<DynamicBitset> features(n, DynamicBitset(dim));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t b = 0; b < dim; ++b) {
        if (rng.NextBernoulli(density)) features[i].Set(b);
      }
    }
    const LinkageKind linkage =
        AllLinkageKinds()[meta.NextBelow(AllLinkageKinds().size())];

    HacOptions serial_opts;
    serial_opts.linkage = linkage;
    serial_opts.tau_c_sim = 0.05 + 0.4 * meta.NextDouble();
    const SimilarityMatrix serial_sims(features, 1);
    const auto serial = Hac::Run(features, serial_sims, serial_opts);
    ASSERT_TRUE(serial.ok()) << "seed=" << seed;

    for (std::size_t threads : {2, 5, 8}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads) + " linkage=" +
                   LinkageKindName(linkage));
      const SimilarityMatrix parallel_sims(features, threads);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(serial_sims.At(i, j), parallel_sims.At(i, j));
        }
      }
      HacOptions parallel_opts = serial_opts;
      parallel_opts.num_threads = threads;
      const auto parallel = Hac::Run(features, parallel_sims, parallel_opts);
      ASSERT_TRUE(parallel.ok());
      ASSERT_EQ(serial->merges.size(), parallel->merges.size());
      for (std::size_t m = 0; m < serial->merges.size(); ++m) {
        ASSERT_EQ(serial->merges[m].slot_a, parallel->merges[m].slot_a);
        ASSERT_EQ(serial->merges[m].slot_b, parallel->merges[m].slot_b);
        ASSERT_EQ(serial->merges[m].similarity,
                  parallel->merges[m].similarity);  // bitwise
      }
      ASSERT_EQ(serial->clusters, parallel->clusters);
    }
  }
}

TEST(FuzzTest, ParallelSimilarityIndexMatchesSerialOnRandomLexicons) {
  // Random printable lexicons through the parallel neighborhood build:
  // every row must match the serial build exactly.
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = 9200 + trial;
    Rng rng(seed);
    std::vector<std::string> terms;
    const std::size_t n = 30 + rng.NextBelow(120);
    for (std::size_t i = 0; i < n; ++i) {
      std::string t;
      const std::size_t len = 3 + rng.NextBelow(12);
      for (std::size_t k = 0; k < len; ++k) {
        t.push_back(static_cast<char>('a' + rng.NextBelow(26)));
      }
      terms.push_back(std::move(t));
    }
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    const double threshold = 0.5 + 0.45 * rng.NextDouble();
    const TermSimilarityKind kind = rng.NextBernoulli(0.5)
                                        ? TermSimilarityKind::kLcs
                                        : TermSimilarityKind::kStem;
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " kind=" + std::to_string(static_cast<int>(kind)) +
                 " threshold=" + std::to_string(threshold));
    const SimilarityIndex serial(terms, TermSimilarity(kind), threshold, 1);
    for (std::size_t threads : {3, 8}) {
      const SimilarityIndex parallel(terms, TermSimilarity(kind), threshold,
                                     threads);
      for (std::size_t i = 0; i < terms.size(); ++i) {
        ASSERT_EQ(serial.Neighbors(i), parallel.Neighbors(i))
            << "threads=" << threads << " term '" << terms[i] << "'";
      }
    }
  }
}

TEST(FuzzTest, MutatedSnapshotsFailGracefully) {
  // Take a valid snapshot and flip bytes: loading must either succeed or
  // return a Status, never crash, and never mis-size the corpus.
  SystemOptions options;
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"make", "model"}));
  corpus.Add(Schema("b", {"title", "authors"}));
  auto sys = IntegrationSystem::Build(corpus, options);
  ASSERT_TRUE(sys.ok());
  const std::string path = ::testing::TempDir() + "/paygo_fuzz_snapshot.txt";
  ASSERT_TRUE(SaveSnapshot(**sys, path).ok());
  std::string original;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    original = buf.str();
  }
  Rng rng(9006);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = original;
    const std::size_t flips = 1 + rng.NextBelow(5);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] =
          static_cast<char>(32 + rng.NextBelow(95));
    }
    std::ofstream out(path);
    out << mutated;
    out.close();
    const auto loaded = LoadSnapshot(path, options);
    if (loaded.ok()) {
      EXPECT_EQ((*loaded)->corpus().size(),
                (*loaded)->domains().num_schemas());
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paygo
