#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "strict_json.h"

namespace paygo {
namespace {

/// Each test starts from a clean, enabled tracer and leaves it disabled.
/// Rings persist for the life of the process, so Clear between tests.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Disable();
    Tracer::ClearAll();
    Tracer::Enable();
  }
  void TearDown() override {
    Tracer::Disable();
    Tracer::SetCurrentTraceId(0);
    Tracer::ClearAll();
  }
};

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  Tracer::Disable();
  {
    PAYGO_TRACE_SPAN("noop.outer");
    PAYGO_TRACE_SPAN("noop.inner");
  }
  Tracer::RecordComplete("noop.complete", 0, 5);
  EXPECT_EQ(Tracer::RetainedEventCount(), 0u);
}

TEST_F(TraceTest, SpanEnabledMidScopeDoesNotRecordOnClose) {
  Tracer::Disable();
  {
    // Captured the disabled state at construction; enabling afterwards must
    // not make the destructor record a span it never started timing.
    ScopedSpan span("late.enable");
    Tracer::Enable();
  }
  EXPECT_EQ(Tracer::RetainedEventCount(), 0u);
}

TEST_F(TraceTest, CollectorSeesNestingDepths) {
  SpanCollector collector;
  {
    PAYGO_TRACE_SPAN("outer");
    {
      PAYGO_TRACE_SPAN("middle");
      { PAYGO_TRACE_SPAN("inner"); }
    }
  }
  // Spans complete innermost-first.
  const std::vector<CollectedSpan>& spans = collector.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_STREQ(spans[1].name, "middle");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_STREQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0u);
  // Timestamp containment: the outer span brackets the inner ones.
  EXPECT_LE(spans[2].start_us, spans[0].start_us);
  EXPECT_GE(spans[2].start_us + spans[2].dur_us,
            spans[0].start_us + spans[0].dur_us);
  EXPECT_EQ(Tracer::RetainedEventCount(), 3u);
}

TEST_F(TraceTest, NestedCollectorsShadowAndRestore) {
  SpanCollector outer;
  { PAYGO_TRACE_SPAN("before.inner"); }
  {
    SpanCollector inner;
    { PAYGO_TRACE_SPAN("while.inner"); }
    ASSERT_EQ(inner.spans().size(), 1u);
    EXPECT_STREQ(inner.spans()[0].name, "while.inner");
  }
  { PAYGO_TRACE_SPAN("after.inner"); }
  // The outer collector missed the shadowed span but resumed afterwards.
  ASSERT_EQ(outer.spans().size(), 2u);
  EXPECT_STREQ(outer.spans()[0].name, "before.inner");
  EXPECT_STREQ(outer.spans()[1].name, "after.inner");
}

TEST_F(TraceTest, RecordCompleteRoutesToRingAndCollector) {
  SpanCollector collector;
  Tracer::RecordComplete("retro.queue_wait", 100, 40);
  ASSERT_EQ(collector.spans().size(), 1u);
  EXPECT_STREQ(collector.spans()[0].name, "retro.queue_wait");
  EXPECT_EQ(collector.spans()[0].start_us, 100u);
  EXPECT_EQ(collector.spans()[0].dur_us, 40u);
  EXPECT_EQ(Tracer::RetainedEventCount(), 1u);
}

TEST_F(TraceTest, TraceIdTagsRingEvents) {
  Tracer::SetCurrentTraceId(777);
  { PAYGO_TRACE_SPAN("tagged.span"); }
  Tracer::SetCurrentTraceId(0);
  const std::string json = Tracer::ExportChromeTrace();
  EXPECT_NE(json.find("\"trace_id\": 777"), std::string::npos) << json;
}

TEST_F(TraceTest, CrossThreadRecordingLandsInSeparateRings) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        PAYGO_TRACE_SPAN("worker.span");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(Tracer::RetainedEventCount(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  const std::string json = Tracer::ExportChromeTrace();
  EXPECT_EQ(CountOccurrences(json, "\"worker.span\""),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_TRUE(strict_json::IsValid(json)) << strict_json::ErrorOf(json);
}

TEST_F(TraceTest, ConcurrentExportWhileRecordingIsSafe) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      PAYGO_TRACE_SPAN("churn.span");
    }
  });
  for (int i = 0; i < 20; ++i) {
    const std::string json = Tracer::ExportChromeTrace();
    EXPECT_TRUE(strict_json::IsValid(json)) << strict_json::ErrorOf(json);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST_F(TraceTest, RingWrapsAroundKeepingNewestEvents) {
  TraceRing ring(42);
  const std::size_t total = TraceRing::kCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    ring.Append("wrap.span", /*start_us=*/i, /*dur_us=*/1, /*trace_id=*/0,
                /*depth=*/0);
  }
  EXPECT_EQ(ring.total_appended(), total);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), TraceRing::kCapacity);
  // Oldest retained event is the one right after the overwritten prefix.
  EXPECT_EQ(events.front().start_us, 100u);
  EXPECT_EQ(events.back().start_us, total - 1);
  EXPECT_EQ(events.front().tid, 42u);
}

TEST_F(TraceTest, ClearDropsRetainedEvents) {
  { PAYGO_TRACE_SPAN("soon.cleared"); }
  ASSERT_GE(Tracer::RetainedEventCount(), 1u);
  Tracer::ClearAll();
  EXPECT_EQ(Tracer::RetainedEventCount(), 0u);
  // The ring stays usable after a clear.
  { PAYGO_TRACE_SPAN("after.clear"); }
  EXPECT_EQ(Tracer::RetainedEventCount(), 1u);
}

TEST_F(TraceTest, ExportIsStrictJsonAndSortedByStart) {
  {
    PAYGO_TRACE_SPAN("export.outer");
    // Ensure the inner span starts on a strictly later microsecond so the
    // sorted export order is deterministic.
    const std::uint64_t t0 = Tracer::NowMicros();
    while (Tracer::NowMicros() == t0) {
    }
    { PAYGO_TRACE_SPAN("export.inner"); }
  }
  const std::string json = Tracer::ExportChromeTrace();
  EXPECT_TRUE(strict_json::IsValid(json)) << strict_json::ErrorOf(json);
  // Chrome trace-event essentials present.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  // The outer span starts first, so it must appear before the inner one.
  const std::size_t outer_pos = json.find("export.outer");
  const std::size_t inner_pos = json.find("export.inner");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
}

TEST_F(TraceTest, NextTraceIdIsUniqueAndNonzero) {
  const std::uint64_t a = Tracer::NextTraceId();
  const std::uint64_t b = Tracer::NextTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace paygo
