#include "mediate/mediator.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace paygo {
namespace {

SchemaCorpus BiblioCorpus() {
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"title", "authors", "year"}), {});
  corpus.Add(Schema("s1", {"Title", "author", "publisher"}), {});
  corpus.Add(Schema("s2", {"paper title", "year", "venue"}), {});
  return corpus;
}

TEST(CanonicalAttributeNameTest, NormalizesCaseAndDelimiters) {
  EXPECT_EQ(CanonicalAttributeName("First Name"), "first name");
  EXPECT_EQ(CanonicalAttributeName("Day/Time"), "day time");
  EXPECT_EQ(CanonicalAttributeName("  title "), "title");
  EXPECT_EQ(CanonicalAttributeName("e-mail_address"), "e mail address");
}

TEST(AttributeNameSimilarityTest, DiceOverSoftTermMatches) {
  Tokenizer tok;
  TermSimilarity sim(TermSimilarityKind::kLcs);
  const auto a = tok.Tokenize("first name");
  const auto b = tok.Tokenize("last name");
  // One of two terms matches on each side: (1+1)/(2+2) = 0.5.
  EXPECT_DOUBLE_EQ(AttributeNameSimilarity(a, b, sim, 0.8), 0.5);
  EXPECT_DOUBLE_EQ(
      AttributeNameSimilarity(tok.Tokenize("title"), tok.Tokenize("title"),
                              sim, 0.8),
      1.0);
  EXPECT_DOUBLE_EQ(
      AttributeNameSimilarity(tok.Tokenize("make"), tok.Tokenize("title"),
                              sim, 0.8),
      0.0);
}

TEST(MediatorTest, GroupsSimilarAttributeNames) {
  const SchemaCorpus corpus = BiblioCorpus();
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.0;  // keep everything
  const auto med = Mediator::BuildForDomain(
      corpus, tok, {{0, 1.0}, {1, 1.0}, {2, 1.0}}, opts);
  ASSERT_TRUE(med.ok()) << med.status();
  // "title", "paper title" (similar), "authors"/"author", "year",
  // "publisher", "venue".
  const int title = med->mediated.FindByMember("title");
  const int paper_title = med->mediated.FindByMember("paper title");
  ASSERT_GE(title, 0);
  EXPECT_EQ(title, paper_title);
  const int author = med->mediated.FindByMember("author");
  const int authors = med->mediated.FindByMember("authors");
  ASSERT_GE(author, 0);
  EXPECT_EQ(author, authors);
  EXPECT_NE(title, author);
}

TEST(MediatorTest, FrequencyThresholdFiltersRareAttributes) {
  const SchemaCorpus corpus = BiblioCorpus();
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.5;  // attribute must appear in >= half
  const auto med = Mediator::BuildForDomain(
      corpus, tok, {{0, 1.0}, {1, 1.0}, {2, 1.0}}, opts);
  ASSERT_TRUE(med.ok());
  // "year" appears in 2/3 schemas (kept); "publisher" and "venue" in 1/3
  // (dropped).
  EXPECT_GE(med->mediated.FindByMember("year"), 0);
  EXPECT_EQ(med->mediated.FindByMember("publisher"), -1);
  EXPECT_EQ(med->mediated.FindByMember("venue"), -1);
}

TEST(MediatorTest, MembershipWeightsAffectFrequencies) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"alpha"}), {});
  corpus.Add(Schema("s1", {"beta"}), {});
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.5;
  // s1 has tiny membership, so "beta"'s weighted frequency is
  // 0.1/1.1 < 0.5 and it is dropped.
  const auto med =
      Mediator::BuildForDomain(corpus, tok, {{0, 1.0}, {1, 0.1}}, opts);
  ASSERT_TRUE(med.ok());
  EXPECT_GE(med->mediated.FindByMember("alpha"), 0);
  EXPECT_EQ(med->mediated.FindByMember("beta"), -1);
}

TEST(MediatorTest, MappingsCoverEveryMemberSchema) {
  const SchemaCorpus corpus = BiblioCorpus();
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.0;
  const auto med = Mediator::BuildForDomain(
      corpus, tok, {{0, 1.0}, {1, 1.0}, {2, 0.7}}, opts);
  ASSERT_TRUE(med.ok());
  ASSERT_EQ(med->mappings.size(), 3u);
  for (std::size_t m = 0; m < 3; ++m) {
    const ProbabilisticMapping& pm = med->mappings[m];
    EXPECT_EQ(pm.schema_id, med->members[m].first);
    ASSERT_FALSE(pm.alternatives.empty());
    double total = 0.0;
    for (const AttributeMapping& alt : pm.alternatives) {
      EXPECT_EQ(alt.target.size(),
                corpus.schema(pm.schema_id).attributes.size());
      total += alt.probability;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Alternatives sorted descending by probability.
    for (std::size_t k = 1; k < pm.alternatives.size(); ++k) {
      EXPECT_GE(pm.alternatives[k - 1].probability,
                pm.alternatives[k].probability - 1e-12);
    }
  }
}

TEST(MediatorTest, ExactMemberAttributesMapWithCertainty) {
  const SchemaCorpus corpus = BiblioCorpus();
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.0;
  const auto med = Mediator::BuildForDomain(
      corpus, tok, {{0, 1.0}, {1, 1.0}, {2, 1.0}}, opts);
  ASSERT_TRUE(med.ok());
  // Schema s0's "title" is a member of a mediated attribute, so every
  // alternative maps it there.
  const int title = med->mediated.FindByMember("title");
  for (const AttributeMapping& alt : med->mappings[0].alternatives) {
    EXPECT_EQ(alt.target[0], title);
  }
  EXPECT_DOUBLE_EQ(med->mappings[0].MarginalCorrespondence(0, title), 1.0);
}

TEST(MediatorTest, FilteredAttributesStayUnmapped) {
  const SchemaCorpus corpus = BiblioCorpus();
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.5;
  const auto med = Mediator::BuildForDomain(
      corpus, tok, {{0, 1.0}, {1, 1.0}, {2, 1.0}}, opts);
  ASSERT_TRUE(med.ok());
  // s1's "publisher" was filtered out of the mediated schema; it must be
  // unmapped (-1) in every alternative.
  const Schema& s1 = corpus.schema(1);
  const auto it =
      std::find(s1.attributes.begin(), s1.attributes.end(), "publisher");
  const std::size_t pub_idx =
      static_cast<std::size_t>(it - s1.attributes.begin());
  for (const AttributeMapping& alt : med->mappings[1].alternatives) {
    EXPECT_EQ(alt.target[pub_idx], -1);
  }
}

TEST(MediatorTest, AmbiguousAttributeFansOutIntoAlternatives) {
  // Mediated attributes "first name" and "last name" stay separate (Dice
  // 0.5 < 0.65); schema s2's "name" is filtered by frequency, matches both
  // with equal similarity, and must fan out into two equally likely
  // mappings — the probabilistic-mapping behaviour of Section 4.4.
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"first name", "last name"}), {});
  corpus.Add(Schema("s1", {"first name", "last name"}), {});
  corpus.Add(Schema("s2", {"name"}), {});
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.5;
  const auto med = Mediator::BuildForDomain(
      corpus, tok, {{0, 1.0}, {1, 1.0}, {2, 1.0}}, opts);
  ASSERT_TRUE(med.ok()) << med.status();
  const int first = med->mediated.FindByMember("first name");
  const int last = med->mediated.FindByMember("last name");
  ASSERT_GE(first, 0);
  ASSERT_GE(last, 0);
  ASSERT_NE(first, last);
  const ProbabilisticMapping& pm = med->mappings[2];
  ASSERT_EQ(pm.alternatives.size(), 2u);
  EXPECT_NEAR(pm.alternatives[0].probability, 0.5, 1e-9);
  EXPECT_NEAR(pm.MarginalCorrespondence(0, first), 0.5, 1e-9);
  EXPECT_NEAR(pm.MarginalCorrespondence(0, last), 0.5, 1e-9);
}

TEST(MediatorTest, MappingCountRespectsCap) {
  // Two ambiguous attributes x two candidates each = 4 raw mappings; with
  // a cap of 2 the widest candidate list must be trimmed best-first.
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"first name", "last name"}), {});
  corpus.Add(Schema("s1", {"first name", "last name"}), {});
  corpus.Add(Schema("amb", {"name", "names"}), {});
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.5;
  opts.max_mappings_per_schema = 2;
  const auto med = Mediator::BuildForDomain(
      corpus, tok, {{0, 1.0}, {1, 1.0}, {2, 1.0}}, opts);
  ASSERT_TRUE(med.ok());
  const ProbabilisticMapping& pm = med->mappings[2];
  EXPECT_LE(pm.alternatives.size(), 2u);
  double total = 0.0;
  for (const AttributeMapping& alt : pm.alternatives) {
    total += alt.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MediatorTest, InvalidInputsRejected) {
  const SchemaCorpus corpus = BiblioCorpus();
  Tokenizer tok;
  EXPECT_TRUE(Mediator::BuildForDomain(corpus, tok, {}, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Mediator::BuildForDomain(corpus, tok, {{9, 1.0}}, {})
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(Mediator::BuildForDomain(corpus, tok, {{0, 0.0}}, {})
                  .status()
                  .IsInvalidArgument());
  MediatorOptions opts;
  opts.attr_freq_threshold = 2.0;
  EXPECT_TRUE(Mediator::BuildForDomain(corpus, tok, {{0, 1.0}}, opts)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paygo
