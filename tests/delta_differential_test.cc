/// \file delta_differential_test.cc
/// \brief The delta write path's exactness guarantee, checked end to end:
/// a system mutated with `delta_mutations = true` is BITWISE equal to one
/// mutated with the legacy full path, over randomized AddSchema/feedback
/// sequences and at every rebuild thread width.
///
/// "Bitwise" is literal — every comparison below is EXPECT_EQ on doubles,
/// never EXPECT_NEAR. The delta path earns this because each of its three
/// shortcuts is exact, not approximate:
///   * the similarity matrix extend-constructor copies the old n x n block
///     and computes only the new row/column of a pure function;
///   * Mediator::BuildForDomain depends only on the domain's own members,
///     so untouched domains' mediations can be shared verbatim;
///   * the factored classifier's per-domain conditionals depend only on
///     the domain's membership rows, and UpdateDomains routes affected
///     domains through the same canonical PrecomputeDomain as Build().
/// Any drift here — a forgotten affected domain, a reordered float
/// accumulation — fails this test immediately.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/integration_system.h"
#include "synth/ddh_generator.h"

namespace paygo {
namespace {

constexpr std::size_t kBaseSchemas = 100;
constexpr std::size_t kExtraSchemas = 12;

/// One generated pool; the first kBaseSchemas seed the system, the rest
/// stream in through AddSchema.
const SchemaCorpus& Pool() {
  static const SchemaCorpus pool = MakeDdhCorpus(
      {.num_schemas = kBaseSchemas + kExtraSchemas, .seed = 29});
  return pool;
}

SchemaCorpus BaseCorpus() {
  SchemaCorpus corpus("ddh-base");
  for (std::size_t i = 0; i < kBaseSchemas; ++i) {
    corpus.Add(Pool().schema(i), Pool().labels(i));
  }
  return corpus;
}

/// Keyword queries drawn from the pool's own vocabulary, so they light up
/// real features.
std::vector<std::string> Queries() {
  std::vector<std::string> queries;
  for (std::size_t i = 0; i < Pool().size(); i += 7) {
    std::string q;
    for (const std::string& attr : Pool().schema(i).attributes) {
      if (!q.empty()) q += ' ';
      q += attr;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Asserts every externally observable number of the two systems is
/// bit-for-bit equal.
void ExpectBitwiseEqual(const IntegrationSystem& a,
                        const IntegrationSystem& b) {
  ASSERT_EQ(a.corpus().size(), b.corpus().size());
  ASSERT_EQ(a.features().size(), b.features().size());
  for (std::size_t i = 0; i < a.features().size(); ++i) {
    EXPECT_TRUE(a.features()[i] == b.features()[i]) << "feature row " << i;
  }

  // Similarity matrix: the extended copy vs the full refill.
  ASSERT_EQ(a.similarities().size(), b.similarities().size());
  for (std::size_t i = 0; i < a.similarities().size(); ++i) {
    for (std::size_t j = 0; j < a.similarities().size(); ++j) {
      EXPECT_EQ(a.similarities().At(i, j), b.similarities().At(i, j))
          << "sims(" << i << ", " << j << ")";
    }
  }

  // Domain model: same clusters, same membership probabilities.
  ASSERT_EQ(a.domains().num_domains(), b.domains().num_domains());
  EXPECT_EQ(a.domains().clusters(), b.domains().clusters());
  for (std::uint32_t i = 0; i < a.domains().num_schemas(); ++i) {
    EXPECT_EQ(a.domains().DomainsOf(i), b.domains().DomainsOf(i))
        << "memberships of schema " << i;
  }

  // Classifier: priors, conditionals, and scores.
  ASSERT_EQ(a.classifier().num_domains(), b.classifier().num_domains());
  for (std::uint32_t r = 0; r < a.classifier().num_domains(); ++r) {
    EXPECT_EQ(a.classifier().Prior(r), b.classifier().Prior(r))
        << "prior of domain " << r;
    EXPECT_EQ(a.classifier().conditionals()[r].q1,
              b.classifier().conditionals()[r].q1)
        << "q1 of domain " << r;
  }
  for (const std::string& q : Queries()) {
    auto sa = a.ClassifyKeywordQuery(q);
    auto sb = b.ClassifyKeywordQuery(q);
    ASSERT_TRUE(sa.ok() && sb.ok());
    ASSERT_EQ(sa->size(), sb->size());
    for (std::size_t k = 0; k < sa->size(); ++k) {
      EXPECT_EQ((*sa)[k].domain, (*sb)[k].domain) << "query: " << q;
      EXPECT_EQ((*sa)[k].log_posterior, (*sb)[k].log_posterior)
          << "query: " << q;
    }
  }

  // Mediation: shared objects vs rebuilt ones must have equal content.
  for (std::uint32_t r = 0; r < a.domains().num_domains(); ++r) {
    const DomainMediation& ma = a.mediation(r);
    const DomainMediation& mb = b.mediation(r);
    EXPECT_EQ(ma.members, mb.members) << "domain " << r;
    ASSERT_EQ(ma.mediated.attributes.size(), mb.mediated.attributes.size())
        << "domain " << r;
    for (std::size_t k = 0; k < ma.mediated.attributes.size(); ++k) {
      EXPECT_EQ(ma.mediated.attributes[k].name,
                mb.mediated.attributes[k].name);
      EXPECT_EQ(ma.mediated.attributes[k].members,
                mb.mediated.attributes[k].members);
      EXPECT_EQ(ma.mediated.attributes[k].weight,
                mb.mediated.attributes[k].weight);
    }
  }
}

class DeltaDifferentialTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeltaDifferentialTest, RandomizedMutationsMatchScratchBitwise) {
  const std::size_t width = GetParam();

  auto built = IntegrationSystem::Build(BaseCorpus());
  ASSERT_TRUE(built.ok()) << built.status();

  // Two clones of the SAME built system, so both start from bit-identical
  // state; only the write path differs.
  auto delta = (*built)->Clone();
  delta->set_delta_mutations(true);
  delta->set_num_threads(width);
  auto scratch = (*built)->Clone();
  scratch->set_delta_mutations(false);
  scratch->set_num_threads(width);

  // Randomized but reproducible interleaving of schema adds and implicit
  // click feedback, applied identically to both systems.
  std::mt19937 rng(0x5eedu + static_cast<unsigned>(width));
  std::size_t next_extra = kBaseSchemas;
  int checked = 0;
  while (next_extra < Pool().size()) {
    if (rng() % 3 == 0) {
      FeedbackStore store;
      const std::uint32_t d =
          rng() % static_cast<std::uint32_t>(delta->domains().num_domains());
      store.RecordImpression(d);
      if (rng() % 2 == 0) store.RecordClick(d);
      ASSERT_TRUE(delta->ApplyFeedback(store).ok());
      ASSERT_TRUE(scratch->ApplyFeedback(store).ok());
    } else {
      auto ra =
          delta->AddSchema(Pool().schema(next_extra), Pool().labels(next_extra));
      auto rb = scratch->AddSchema(Pool().schema(next_extra),
                                   Pool().labels(next_extra));
      ASSERT_TRUE(ra.ok()) << ra.status();
      ASSERT_TRUE(rb.ok()) << rb.status();
      EXPECT_EQ(ra->memberships, rb->memberships);
      ++next_extra;
    }
    // Full bitwise sweep every few mutations (it is O(n^2) in the sims),
    // and always after the final one.
    if (++checked % 4 == 0 || next_extra == Pool().size()) {
      ExpectBitwiseEqual(*delta, *scratch);
      if (::testing::Test::HasFailure()) break;
    }
  }
  ExpectBitwiseEqual(*delta, *scratch);
}

INSTANTIATE_TEST_SUITE_P(ThreadWidths, DeltaDifferentialTest,
                         ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "width" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace paygo
