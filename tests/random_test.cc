#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace paygo {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextU64() != b.NextU64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInRange(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedNeverPicksZeroWeight) {
  Rng rng(9);
  const std::vector<double> w = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 500; ++i) {
    const std::size_t k = rng.NextWeighted(w);
    EXPECT_TRUE(k == 1 || k == 3);
  }
}

TEST(RngTest, WeightedRoughlyProportional) {
  Rng rng(10);
  const std::vector<double> w = {1.0, 3.0};
  int c1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextWeighted(w) == 1) ++c1;
  }
  EXPECT_NEAR(static_cast<double>(c1) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ShuffleDeterministic) {
  Rng a(12), b(12);
  std::vector<int> va = {1, 2, 3, 4, 5};
  std::vector<int> vb = va;
  a.Shuffle(va);
  b.Shuffle(vb);
  EXPECT_EQ(va, vb);
}

}  // namespace
}  // namespace paygo
