#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/neighbor_graph.h"
#include "core/integration_system.h"
#include "synth/many_domains.h"
#include "util/random.h"

namespace paygo {
namespace {

std::vector<DynamicBitset> RandomFeatures(Rng& rng, std::size_t n,
                                          std::size_t dim) {
  std::vector<DynamicBitset> features(n, DynamicBitset(dim));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = rng.NextBelow(4);
    const std::size_t width = dim / 4;
    for (std::size_t b = g * width; b < (g + 1) * width; ++b) {
      if (rng.NextBernoulli(0.35)) features[i].Set(b);
    }
    if (rng.NextBernoulli(0.25)) features[i].Set(rng.NextBelow(dim));
  }
  return features;
}

/// The brute-force oracle: every pair with nonzero Jaccard >= edge_tau.
struct OracleEdge {
  std::uint32_t a, b;
  float sim;
};

std::vector<OracleEdge> BruteForce(const std::vector<DynamicBitset>& features,
                                   double edge_tau) {
  std::vector<OracleEdge> edges;
  for (std::uint32_t a = 0; a < features.size(); ++a) {
    for (std::uint32_t b = a + 1; b < features.size(); ++b) {
      const double j = DynamicBitset::Jaccard(features[a], features[b]);
      if (j > 0.0 && j >= edge_tau) {
        edges.push_back({a, b, static_cast<float>(j)});
      }
    }
  }
  return edges;
}

void ExpectMatchesOracle(const NeighborGraph& graph,
                         const std::vector<DynamicBitset>& features,
                         double edge_tau, const std::string& label) {
  const auto oracle = BruteForce(features, edge_tau);
  ASSERT_EQ(graph.num_edges(), oracle.size()) << label;
  for (const OracleEdge& e : oracle) {
    // Stored similarity must be bitwise the float-rounded exact Jaccard,
    // in both directions.
    ASSERT_EQ(graph.Similarity(e.a, e.b), e.sim)
        << label << " edge " << e.a << "-" << e.b;
    ASSERT_EQ(graph.Similarity(e.b, e.a), e.sim)
        << label << " edge " << e.b << "-" << e.a;
  }
  for (std::uint32_t i = 0; i < features.size(); ++i) {
    ASSERT_EQ(graph.NonEmpty(i), features[i].Count() > 0) << label;
    // Rows sorted by id, no self-loops, all sims positive.
    const auto [begin, end] = graph.Row(i);
    for (const NeighborEdge* e = begin; e != end; ++e) {
      ASSERT_NE(e->id, i) << label;
      ASSERT_GT(e->sim, 0.0f) << label;
      if (e + 1 != end) {
        ASSERT_LT(e->id, (e + 1)->id) << label;
      }
    }
  }
}

TEST(NeighborGraphTest, ExactMatchesBruteForce) {
  Rng rng(11);
  const auto features = RandomFeatures(rng, 80, 96);
  for (std::size_t threads : {1u, 2u, 4u}) {
    NeighborGraphOptions opts;
    opts.num_threads = threads;
    const auto graph = NeighborGraph::Build(features, opts);
    ASSERT_TRUE(graph.ok()) << graph.status();
    ExpectMatchesOracle(*graph, features, 0.0,
                        "threads=" + std::to_string(threads));
    EXPECT_EQ(graph->stats().num_edges, graph->num_edges());
    EXPECT_GE(graph->stats().candidates_verified, graph->num_edges());
  }
}

TEST(NeighborGraphTest, ExactWithForcedHotPostingsMatchesBruteForce) {
  Rng rng(23);
  const auto features = RandomFeatures(rng, 60, 64);
  // hot_posting_limit = 1 makes EVERY shared feature hot, so all edges
  // must come from the heavy-set pairwise sweep.
  NeighborGraphOptions opts;
  opts.hot_posting_limit = 1;
  for (std::size_t threads : {1u, 4u}) {
    opts.num_threads = threads;
    const auto graph = NeighborGraph::Build(features, opts);
    ASSERT_TRUE(graph.ok()) << graph.status();
    ExpectMatchesOracle(*graph, features, 0.0,
                        "hot=1 threads=" + std::to_string(threads));
  }
}

TEST(NeighborGraphTest, EdgeTauFiltersLowSimilarityEdges) {
  Rng rng(37);
  const auto features = RandomFeatures(rng, 50, 64);
  NeighborGraphOptions opts;
  opts.edge_tau = 0.3;
  const auto graph = NeighborGraph::Build(features, opts);
  ASSERT_TRUE(graph.ok()) << graph.status();
  ExpectMatchesOracle(*graph, features, 0.3, "edge_tau=0.3");
  EXPECT_GT(graph->stats().candidates_pruned, 0u);
}

TEST(NeighborGraphTest, TopKPruningKeepsSymmetricUnion) {
  Rng rng(41);
  const auto features = RandomFeatures(rng, 60, 64);
  NeighborGraphOptions opts;
  opts.top_k = 5;
  const auto graph = NeighborGraph::Build(features, opts);
  ASSERT_TRUE(graph.ok()) << graph.status();

  NeighborGraphOptions full_opts;
  const auto full = NeighborGraph::Build(features, full_opts);
  ASSERT_TRUE(full.ok());
  ASSERT_LE(graph->num_edges(), full->num_edges());

  // Every kept edge exists in the full graph with the same similarity, and
  // the graph stays symmetric.
  for (std::uint32_t i = 0; i < features.size(); ++i) {
    const auto [begin, end] = graph->Row(i);
    for (const NeighborEdge* e = begin; e != end; ++e) {
      ASSERT_EQ(full->Similarity(i, e->id), e->sim);
      ASSERT_EQ(graph->Similarity(e->id, i), e->sim);
    }
  }
  // An edge survives iff it ranks in the top-k by (sim desc, id asc) of at
  // least one endpoint; check each node's k best full-graph neighbors are
  // all present.
  for (std::uint32_t i = 0; i < features.size(); ++i) {
    const auto [begin, end] = full->Row(i);
    std::vector<NeighborEdge> row(begin, end);
    std::sort(row.begin(), row.end(), [](const auto& x, const auto& y) {
      if (x.sim != y.sim) return x.sim > y.sim;
      return x.id < y.id;
    });
    for (std::size_t k = 0; k < std::min<std::size_t>(5, row.size()); ++k) {
      ASSERT_GT(graph->Similarity(i, row[k].id), 0.0f)
          << "node " << i << " lost top-" << k << " neighbor " << row[k].id;
    }
  }
}

TEST(NeighborGraphTest, ChooseBandingMeetsRecallTarget) {
  for (double tau : {0.2, 0.25, 0.4, 0.6}) {
    std::size_t bands = 0, rows = 0;
    NeighborGraph::ChooseBanding(128, tau, 0.95, &bands, &rows);
    ASSERT_GE(rows, 1u);
    ASSERT_GE(bands, 1u);
    ASSERT_LE(bands * rows, 128u);
    EXPECT_GE(NeighborGraph::CollisionProbability(tau, bands, rows), 0.95)
        << "tau=" << tau;
    // Tau-awareness: the same parameters at a clearly higher similarity
    // collide at least as often.
    EXPECT_GE(NeighborGraph::CollisionProbability(tau + 0.2, bands, rows),
              NeighborGraph::CollisionProbability(tau, bands, rows));
  }
  // Higher tau affords more rows per band (fewer false positives).
  std::size_t b_lo = 0, r_lo = 0, b_hi = 0, r_hi = 0;
  NeighborGraph::ChooseBanding(128, 0.2, 0.95, &b_lo, &r_lo);
  NeighborGraph::ChooseBanding(128, 0.7, 0.95, &b_hi, &r_hi);
  EXPECT_GE(r_hi, r_lo);
}

TEST(NeighborGraphTest, LshEdgesAreExactSubsetOfBruteForce) {
  Rng rng(53);
  const auto features = RandomFeatures(rng, 80, 96);
  NeighborGraphOptions opts;
  opts.mode = NeighborGraphMode::kMinHashLsh;
  opts.recall_tau = 0.25;
  const auto graph = NeighborGraph::Build(features, opts);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_GT(graph->stats().bands_probed, 0u);
  EXPECT_GT(graph->stats().lsh_bands, 0u);
  // Every surviving edge carries the exact float Jaccard.
  for (std::uint32_t i = 0; i < features.size(); ++i) {
    const auto [begin, end] = graph->Row(i);
    for (const NeighborEdge* e = begin; e != end; ++e) {
      ASSERT_EQ(e->sim,
                static_cast<float>(
                    DynamicBitset::Jaccard(features[i], features[e->id])));
    }
  }
}

TEST(NeighborGraphTest, ExtendMatchesFullRebuild) {
  Rng rng(61);
  const auto features = RandomFeatures(rng, 50, 64);
  const std::vector<DynamicBitset> prefix(features.begin(),
                                          features.begin() + 35);
  NeighborGraphOptions opts;
  const auto base = NeighborGraph::Build(prefix, opts);
  ASSERT_TRUE(base.ok());
  const NeighborGraph extended(*base, features);
  ASSERT_EQ(extended.num_nodes(), features.size());
  ExpectMatchesOracle(extended, features, 0.0, "extended");
}

TEST(NeighborGraphTest, RejectsBadOptions) {
  std::vector<DynamicBitset> f(2, DynamicBitset(8));
  f[0].Set(1);
  f[1].Set(1);
  NeighborGraphOptions opts;
  opts.edge_tau = 1.5;
  EXPECT_TRUE(NeighborGraph::Build(f, opts).status().IsInvalidArgument());
  opts.edge_tau = 0.0;
  opts.mode = NeighborGraphMode::kMinHashLsh;
  opts.num_hashes = 0;
  EXPECT_TRUE(NeighborGraph::Build(f, opts).status().IsInvalidArgument());
  // Mismatched dimensions.
  std::vector<DynamicBitset> bad = {DynamicBitset(8), DynamicBitset(16)};
  EXPECT_TRUE(
      NeighborGraph::Build(bad, NeighborGraphOptions{}).status().IsInvalidArgument());
}

TEST(NeighborGraphTest, EmptyAndSingletonInputs) {
  NeighborGraphOptions opts;
  const auto empty = NeighborGraph::Build({}, opts);
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty->num_nodes(), 0u);
  EXPECT_EQ(empty->num_edges(), 0u);

  std::vector<DynamicBitset> one(1, DynamicBitset(8));
  one[0].Set(3);
  const auto single = NeighborGraph::Build(one, opts);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->num_nodes(), 1u);
  EXPECT_EQ(single->num_edges(), 0u);
  EXPECT_TRUE(single->NonEmpty(0));
}

// --- the sparse end-to-end build path through IntegrationSystem ---

TEST(NeighborGraphTest, SparseSystemBuildMatchesDense) {
  ManyDomainOptions gen;
  gen.num_domains = 40;
  SchemaCorpus corpus = MakeManyDomainCorpus(gen);

  SystemOptions dense_opts;
  dense_opts.hac.tau_c_sim = 0.25;
  const auto dense = IntegrationSystem::Build(corpus, dense_opts);
  ASSERT_TRUE(dense.ok()) << dense.status();

  SystemOptions sparse_opts = dense_opts;
  sparse_opts.sparse_build = true;
  sparse_opts.hac.use_sparse_engine = true;
  const auto sparse = IntegrationSystem::Build(corpus, sparse_opts);
  ASSERT_TRUE(sparse.ok()) << sparse.status();

  EXPECT_FALSE((*sparse)->has_similarities());
  EXPECT_TRUE((*sparse)->has_neighbor_graph());
  EXPECT_TRUE((*dense)->has_similarities());
  EXPECT_FALSE((*dense)->has_neighbor_graph());

  // Identical clustering and identical probabilistic assignments.
  ASSERT_EQ((*dense)->clustering().clusters, (*sparse)->clustering().clusters);
  const DomainModel& dm = (*dense)->domains();
  const DomainModel& sm = (*sparse)->domains();
  ASSERT_EQ(dm.num_domains(), sm.num_domains());
  ASSERT_EQ(dm.num_schemas(), sm.num_schemas());
  for (std::uint32_t s = 0; s < dm.num_schemas(); ++s) {
    const auto& md = dm.DomainsOf(s);
    const auto& ms = sm.DomainsOf(s);
    ASSERT_EQ(md.size(), ms.size()) << "schema " << s;
    for (std::size_t k = 0; k < md.size(); ++k) {
      EXPECT_EQ(md[k].first, ms[k].first) << "schema " << s;
      // Bitwise probability equality: the sparse assignment path must
      // compute the same sums in the same order as the dense one.
      EXPECT_EQ(md[k].second, ms[k].second) << "schema " << s;
    }
  }

  // Explicit feedback needs the dense matrix and must be rejected cleanly
  // in sparse mode.
  FeedbackStore store;
  ASSERT_TRUE(store.RecordMustLink(0, 1).ok());
  EXPECT_TRUE((*sparse)->ApplyFeedback(store).IsFailedPrecondition());
}

}  // namespace
}  // namespace paygo
