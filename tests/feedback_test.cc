#include "feedback/feedback.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

/// Two natural clusters {0,1,2} and {3,4}; schema 2 sits near the border.
std::vector<DynamicBitset> Features() {
  std::vector<DynamicBitset> f(5, DynamicBitset(16));
  for (std::size_t b : {0u, 1u, 2u, 3u}) {
    f[0].Set(b);
    f[1].Set(b);
  }
  for (std::size_t b : {0u, 1u, 2u, 9u}) f[2].Set(b);
  for (std::size_t b : {8u, 9u, 10u, 11u}) {
    f[3].Set(b);
    f[4].Set(b);
  }
  return f;
}

TEST(FeedbackStoreTest, RecordsAndValidates) {
  FeedbackStore store;
  EXPECT_TRUE(store.RecordMustLink(0, 1).ok());
  EXPECT_TRUE(store.RecordCannotLink(0, 3).ok());
  EXPECT_TRUE(store.RecordMustLink(2, 2).IsInvalidArgument());
  EXPECT_TRUE(store.RecordCorrection(2, 2, 2).IsInvalidArgument());
  EXPECT_TRUE(store.has_explicit_feedback());
  EXPECT_EQ(store.must_link().size(), 1u);
  EXPECT_EQ(store.cannot_link().size(), 1u);
}

TEST(FeedbackStoreTest, CorrectionCompilesToBothConstraints) {
  FeedbackStore store;
  ASSERT_TRUE(store.RecordCorrection(2, 0, 3).ok());
  ASSERT_EQ(store.cannot_link().size(), 1u);
  ASSERT_EQ(store.must_link().size(), 1u);
  EXPECT_EQ(store.cannot_link()[0], std::make_pair(2u, 0u));
  EXPECT_EQ(store.must_link()[0], std::make_pair(2u, 3u));
}

TEST(FeedbackStoreTest, ClickCounting) {
  FeedbackStore store;
  store.RecordImpression(3);
  store.RecordImpression(3);
  store.RecordClick(3);
  EXPECT_EQ(store.impressions(3), 2u);
  EXPECT_EQ(store.clicks(3), 1u);
  EXPECT_EQ(store.clicks(99), 0u);
  EXPECT_TRUE(store.has_implicit_feedback());
}

TEST(ConstrainedHacTest, MustLinkForcesMerge) {
  const auto features = Features();
  SimilarityMatrix sims(features);
  HacOptions opts;
  opts.tau_c_sim = 0.9;  // nothing would merge on similarity alone
  opts.must_link = {{0, 4}};
  const auto result = Hac::Run(features, sims, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->ClusterOf(0), result->ClusterOf(4));
}

TEST(ConstrainedHacTest, CannotLinkPreventsMerge) {
  const auto features = Features();
  SimilarityMatrix sims(features);
  HacOptions base;
  base.tau_c_sim = 0.3;
  const auto unconstrained = Hac::Run(features, sims, base);
  ASSERT_TRUE(unconstrained.ok());
  ASSERT_EQ(unconstrained->ClusterOf(0), unconstrained->ClusterOf(1));

  HacOptions opts = base;
  opts.cannot_link = {{0, 1}};
  const auto result = Hac::Run(features, sims, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->ClusterOf(0), result->ClusterOf(1));
}

TEST(ConstrainedHacTest, CannotLinkPropagatesThroughMerges) {
  // 2 joins {0,1}'s cluster; cannot-link(2, 3) must then keep schema 3's
  // cluster from merging with the whole group even if similarities allow.
  const auto features = Features();
  SimilarityMatrix sims(features);
  HacOptions opts;
  opts.tau_c_sim = 0.0;  // merge everything permitted
  opts.cannot_link = {{2, 3}};
  const auto result = Hac::Run(features, sims, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->ClusterOf(2), result->ClusterOf(3));
  // Everything else collapsed as far as constraints allow: exactly two
  // clusters remain.
  EXPECT_EQ(result->clusters.size(), 2u);
}

TEST(ConstrainedHacTest, ConflictingConstraintsRejected) {
  const auto features = Features();
  SimilarityMatrix sims(features);
  HacOptions opts;
  opts.must_link = {{0, 1}, {1, 2}};
  opts.cannot_link = {{0, 2}};  // conflicts through the must-link closure
  EXPECT_TRUE(Hac::Run(features, sims, opts).status().IsInvalidArgument());
}

TEST(ConstrainedHacTest, OutOfRangeConstraintRejected) {
  const auto features = Features();
  SimilarityMatrix sims(features);
  HacOptions opts;
  opts.must_link = {{0, 99}};
  EXPECT_TRUE(Hac::Run(features, sims, opts).status().IsOutOfRange());
}

TEST(ConstrainedHacTest, NaiveEngineHonorsConstraintsIdentically) {
  const auto features = Features();
  SimilarityMatrix sims(features);
  HacOptions fast;
  fast.tau_c_sim = 0.2;
  fast.must_link = {{0, 3}};
  fast.cannot_link = {{1, 4}};
  HacOptions naive = fast;
  naive.use_naive_engine = true;
  const auto rf = Hac::Run(features, sims, fast);
  const auto rn = Hac::Run(features, sims, naive);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rn.ok());
  auto sorted = [](const HacResult& r) {
    auto c = r.clusters;
    std::sort(c.begin(), c.end());
    return c;
  };
  EXPECT_EQ(sorted(*rf), sorted(*rn));
}

TEST(ReclusterWithFeedbackTest, CorrectionMovesSchema) {
  const auto features = Features();
  SimilarityMatrix sims(features);
  HacOptions hac;
  hac.tau_c_sim = 0.25;
  AssignmentOptions assign;
  assign.tau_c_sim = 0.25;

  // Without feedback, boundary schema 2 clusters with {0,1}.
  const auto before = Hac::Run(features, sims, hac);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->ClusterOf(2), before->ClusterOf(0));

  // The user says: schema 2 belongs with schema 3, not schema 0.
  FeedbackStore store;
  ASSERT_TRUE(store.RecordCorrection(2, 0, 3).ok());
  const auto model = ReclusterWithFeedback(features, sims, hac, assign, store);
  ASSERT_TRUE(model.ok()) << model.status();
  // Schema 2 now lives (with certainty) in schema 3's domain.
  std::uint32_t domain_of_3 = model->DomainsOf(3)[0].first;
  EXPECT_DOUBLE_EQ(model->Membership(2, domain_of_3), 1.0);
  // And not in schema 0's domain.
  std::uint32_t domain_of_0 = model->DomainsOf(0)[0].first;
  EXPECT_DOUBLE_EQ(model->Membership(2, domain_of_0), 0.0);
}

TEST(AdjustClassifierWithClicksTest, ClicksBoostRelativeRanking) {
  // Two structurally identical domains: without feedback they tie; clicks
  // on domain 1 must break the tie in its favor.
  const std::size_t dim = 6;
  std::vector<DynamicBitset> features(4, DynamicBitset(dim));
  features[0].Set(0);
  features[1].Set(0);
  features[2].Set(0);
  features[3].Set(0);
  DomainModel model = DomainModel::Build(
      {{0, 1}, {2, 3}},
      {{{0, 1.0}}, {{0, 1.0}}, {{1, 1.0}}, {{1, 1.0}}});
  const auto clf = NaiveBayesClassifier::Build(model, features, 4, {});
  ASSERT_TRUE(clf.ok());

  DynamicBitset query(dim);
  query.Set(0);
  const auto before = clf->Classify(query);
  ASSERT_EQ(before[0].domain, 0u);  // tie broken by id

  FeedbackStore store;
  for (int i = 0; i < 10; ++i) {
    store.RecordImpression(0);
    store.RecordImpression(1);
    store.RecordClick(1);
  }
  const NaiveBayesClassifier adjusted =
      AdjustClassifierWithClicks(*clf, store);
  const auto after = adjusted.Classify(query);
  EXPECT_EQ(after[0].domain, 1u);
}

TEST(AdjustClassifierWithClicksTest, NoFeedbackKeepsRanking) {
  const std::size_t dim = 4;
  std::vector<DynamicBitset> features(2, DynamicBitset(dim));
  features[0].Set(0);
  features[1].Set(2);
  DomainModel model =
      DomainModel::Build({{0}, {1}}, {{{0, 1.0}}, {{1, 1.0}}});
  const auto clf = NaiveBayesClassifier::Build(model, features, 2, {});
  ASSERT_TRUE(clf.ok());
  FeedbackStore store;
  const NaiveBayesClassifier adjusted =
      AdjustClassifierWithClicks(*clf, store);
  DynamicBitset q(dim);
  q.Set(0);
  EXPECT_EQ(adjusted.Classify(q)[0].domain, clf->Classify(q)[0].domain);
}

}  // namespace
}  // namespace paygo
