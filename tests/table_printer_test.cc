#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace paygo {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowHelper) {
  TablePrinter t({"tau", "precision", "recall"});
  t.AddRow("0.2", {0.81234, 0.7777}, 2);
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("0.81"), std::string::npos);
  EXPECT_NE(os.str().find("0.78"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesSpecialCharacters) {
  TablePrinter t({"label", "note"});
  t.AddRow({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "label,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TablePrinterTest, CsvPlainValuesUnquoted) {
  TablePrinter t({"x", "y"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

}  // namespace
}  // namespace paygo
