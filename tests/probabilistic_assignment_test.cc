#include "cluster/probabilistic_assignment.h"

#include <gtest/gtest.h>

#include <cmath>

namespace paygo {
namespace {

/// Features engineered so schema 4 sits on the boundary between the
/// cluster {0,1} and the cluster {2,3}.
std::vector<DynamicBitset> BoundaryFeatures() {
  std::vector<DynamicBitset> f(5, DynamicBitset(12));
  for (std::size_t b : {0u, 1u, 2u, 3u}) {
    f[0].Set(b);
    f[1].Set(b);
  }
  for (std::size_t b : {6u, 7u, 8u, 9u}) {
    f[2].Set(b);
    f[3].Set(b);
  }
  // Schema 4 overlaps both groups equally.
  for (std::size_t b : {0u, 1u, 6u, 7u}) f[4].Set(b);
  return f;
}

TEST(AssignProbabilitiesTest, CertainSchemasGetProbabilityOne) {
  const auto features = BoundaryFeatures();
  SimilarityMatrix sims(features);
  HacResult clustering;
  clustering.clusters = {{0, 1}, {2, 3}, {4}};
  AssignmentOptions opts;
  opts.tau_c_sim = 0.3;
  opts.theta = 0.02;
  const auto model = AssignProbabilities(sims, clustering, opts);
  ASSERT_TRUE(model.ok()) << model.status();
  // Schemas 0..3 are deep inside their clusters: membership 1 there.
  EXPECT_DOUBLE_EQ(model->Membership(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model->Membership(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(model->Membership(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(model->Membership(3, 1), 1.0);
  EXPECT_DOUBLE_EQ(model->Membership(0, 1), 0.0);
}

TEST(AssignProbabilitiesTest, MembershipsSumToOneForAssignedSchemas) {
  const auto features = BoundaryFeatures();
  SimilarityMatrix sims(features);
  HacResult clustering;
  clustering.clusters = {{0, 1}, {2, 3}, {4}};
  AssignmentOptions opts;
  opts.tau_c_sim = 0.2;
  opts.theta = 0.5;  // generous: allow multi-domain membership
  const auto model = AssignProbabilities(sims, clustering, opts);
  ASSERT_TRUE(model.ok());
  for (std::uint32_t i = 0; i < 5; ++i) {
    if (!model->DomainsOf(i).empty()) {
      EXPECT_NEAR(model->TotalMembership(i), 1.0, 1e-9) << "schema " << i;
    }
  }
}

TEST(AssignProbabilitiesTest, ThetaZeroGivesHardAssignments) {
  const auto features = BoundaryFeatures();
  SimilarityMatrix sims(features);
  HacResult clustering;
  clustering.clusters = {{0, 1, 4}, {2, 3}};
  AssignmentOptions opts;
  opts.tau_c_sim = 0.0;
  opts.theta = 0.0;
  const auto model = AssignProbabilities(sims, clustering, opts);
  ASSERT_TRUE(model.ok());
  // With theta = 0 only exact similarity ties can split membership; on
  // this data schema 4's tie (equal similarity to both groups of raw
  // schemas) is broken by its own presence in cluster 0, so every schema
  // is hard-assigned.
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_EQ(model->DomainsOf(i).size(), 1u) << "schema " << i;
    EXPECT_DOUBLE_EQ(model->DomainsOf(i)[0].second, 1.0);
  }
}

TEST(AssignProbabilitiesTest, BoundarySchemaSplitsAcrossDomains) {
  std::vector<DynamicBitset> f(5, DynamicBitset(12));
  for (std::size_t b : {0u, 1u, 2u, 3u}) {
    f[0].Set(b);
    f[1].Set(b);
  }
  for (std::size_t b : {6u, 7u, 8u, 9u}) {
    f[2].Set(b);
    f[3].Set(b);
  }
  for (std::size_t b : {0u, 1u, 6u, 7u}) f[4].Set(b);
  SimilarityMatrix sims(f);
  HacResult clustering;
  clustering.clusters = {{0, 1}, {2, 3}, {4}};
  AssignmentOptions opts;
  opts.tau_c_sim = 0.25;
  opts.theta = 0.05;
  const auto model = AssignProbabilities(sims, clustering, opts);
  ASSERT_TRUE(model.ok());
  // Schema 4 is equidistant from clusters 0 and 1 (s_c_sim = 1/3 each) but
  // closest to its own singleton cluster (s_c_sim = 1), so the ratio test
  // keeps it only there. Verify the s_c_sim values directly.
  EXPECT_NEAR(SchemaClusterSimilarity(sims, 4, clustering.clusters[0]),
              1.0 / 3.0, 1e-6);
  EXPECT_NEAR(SchemaClusterSimilarity(sims, 4, clustering.clusters[1]),
              1.0 / 3.0, 1e-6);
  EXPECT_DOUBLE_EQ(model->Membership(4, 2), 1.0);
}

TEST(AssignProbabilitiesTest, EqualSimilaritySplitsEvenly) {
  // Schema 2 equally similar to singleton clusters {0} and {1}; no
  // self-cluster to dominate (schema 2 is in cluster {2} but we remove its
  // advantage by making it identical to both).
  std::vector<DynamicBitset> f(3, DynamicBitset(8));
  for (std::size_t b : {0u, 1u}) f[0].Set(b);
  for (std::size_t b : {0u, 1u}) f[1].Set(b);
  for (std::size_t b : {0u, 1u}) f[2].Set(b);
  SimilarityMatrix sims(f);
  HacResult clustering;
  clustering.clusters = {{0, 1, 2}};
  AssignmentOptions opts;
  opts.tau_c_sim = 0.5;
  opts.theta = 0.02;
  const auto model = AssignProbabilities(sims, clustering, opts);
  ASSERT_TRUE(model.ok());
  // One domain, all members certain.
  EXPECT_EQ(model->CertainSchemas(0),
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_TRUE(model->UncertainSchemas(0).empty());
}

TEST(AssignProbabilitiesTest, StrictSemanticsDropsLowSimilaritySchemas) {
  // Two dissimilar schemas forced into one cluster: under a high tau both
  // fail the absolute test against their own cluster.
  std::vector<DynamicBitset> f(2, DynamicBitset(8));
  f[0].Set(0);
  f[1].Set(7);
  SimilarityMatrix sims(f);
  HacResult clustering;
  clustering.clusters = {{0, 1}};
  AssignmentOptions opts;
  opts.tau_c_sim = 0.9;
  opts.strict_thesis_semantics = true;
  const auto strict = AssignProbabilities(sims, clustering, opts);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->DomainsOf(0).empty());
  EXPECT_DOUBLE_EQ(strict->TotalMembership(0), 0.0);

  opts.strict_thesis_semantics = false;
  const auto fallback = AssignProbabilities(sims, clustering, opts);
  ASSERT_TRUE(fallback.ok());
  EXPECT_DOUBLE_EQ(fallback->Membership(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(fallback->Membership(1, 0), 1.0);
}

TEST(AssignProbabilitiesTest, UncertainAndCertainPartitionMembers) {
  const auto features = BoundaryFeatures();
  SimilarityMatrix sims(features);
  HacResult clustering;
  clustering.clusters = {{0, 1}, {2, 3}, {4}};
  AssignmentOptions opts;
  opts.tau_c_sim = 0.2;
  opts.theta = 0.9;
  const auto model = AssignProbabilities(sims, clustering, opts);
  ASSERT_TRUE(model.ok());
  for (std::uint32_t r = 0; r < model->num_domains(); ++r) {
    const auto certain = model->CertainSchemas(r);
    const auto uncertain = model->UncertainSchemas(r);
    EXPECT_EQ(certain.size() + uncertain.size(), model->SchemasOf(r).size());
  }
}

TEST(AssignProbabilitiesTest, InvalidOptionsRejected) {
  std::vector<DynamicBitset> f(1, DynamicBitset(2));
  SimilarityMatrix sims(f);
  HacResult clustering;
  clustering.clusters = {{0}};
  AssignmentOptions opts;
  opts.theta = 1.5;
  EXPECT_TRUE(
      AssignProbabilities(sims, clustering, opts).status().IsInvalidArgument());
  opts.theta = 0.02;
  opts.tau_c_sim = -0.1;
  EXPECT_TRUE(
      AssignProbabilities(sims, clustering, opts).status().IsInvalidArgument());
}

}  // namespace
}  // namespace paygo
