#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/hac.h"
#include "cluster/linkage.h"
#include "cluster/probabilistic_assignment.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "synth/ddh_generator.h"
#include "text/similarity_index.h"
#include "text/tokenizer.h"

namespace paygo {
namespace {

// Differential harness: every parallel path must be BIT-identical to the
// serial (num_threads = 1) path — same dendrogram (merge order, slots, and
// similarity doubles compared with ==), same flat clusters, same
// probabilistic domain scores — for every linkage and thread count.
//
// Set PAYGO_DETERMINISM_SMALL=1 to shrink the corpora (used by the TSan CI
// job, where the instrumented LCS scans would otherwise dominate the run).

const std::vector<std::size_t>& ThreadCounts() {
  static const std::vector<std::size_t> kCounts = {2, 4, 8};
  return kCounts;
}

bool SmallMode() {
  const char* v = std::getenv("PAYGO_DETERMINISM_SMALL");
  return v != nullptr && std::string(v) != "0";
}

std::vector<std::size_t> CorpusSizes() {
  return SmallMode() ? std::vector<std::size_t>{60, 120}
                     : std::vector<std::size_t>{100, 400};
}

SchemaCorpus Corpus(std::size_t num_schemas) {
  DdhGeneratorOptions gen;
  gen.num_schemas = num_schemas;
  gen.seed = 17;
  return MakeDdhCorpus(gen);
}

struct BuiltFeatures {
  std::unique_ptr<Lexicon> lexicon;
  std::vector<DynamicBitset> features;
};

BuiltFeatures Featurize(const SchemaCorpus& corpus, TermSimilarityKind kind,
                        std::size_t num_threads) {
  Tokenizer tok;
  BuiltFeatures out;
  out.lexicon = std::make_unique<Lexicon>(Lexicon::Build(corpus, tok));
  FeatureVectorizerOptions opts;
  opts.similarity_kind = kind;
  opts.num_threads = num_threads;
  FeatureVectorizer vec(*out.lexicon, opts);
  out.features = vec.VectorizeCorpus();
  return out;
}

void ExpectIdenticalMerges(const HacResult& serial, const HacResult& parallel,
                           const std::string& label) {
  ASSERT_EQ(serial.merges.size(), parallel.merges.size()) << label;
  for (std::size_t m = 0; m < serial.merges.size(); ++m) {
    EXPECT_EQ(serial.merges[m].slot_a, parallel.merges[m].slot_a)
        << label << " merge " << m;
    EXPECT_EQ(serial.merges[m].slot_b, parallel.merges[m].slot_b)
        << label << " merge " << m;
    // Bitwise double equality, not near-equality: the parallel path must
    // perform the same FP operations in the same order.
    EXPECT_EQ(serial.merges[m].similarity, parallel.merges[m].similarity)
        << label << " merge " << m;
  }
  EXPECT_EQ(serial.clusters, parallel.clusters) << label;
}

// --- SimilarityIndex: parallel neighborhood build is bit-identical ---

TEST(ParallelDeterminismTest, SimilarityIndexNeighborhoods) {
  const SchemaCorpus corpus = Corpus(CorpusSizes().front());
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  for (TermSimilarityKind kind :
       {TermSimilarityKind::kStem, TermSimilarityKind::kLcs}) {
    const SimilarityIndex serial(lexicon.terms(), TermSimilarity(kind), 0.8,
                                 /*num_threads=*/1);
    for (std::size_t t : ThreadCounts()) {
      const SimilarityIndex parallel(lexicon.terms(), TermSimilarity(kind),
                                     0.8, t);
      ASSERT_EQ(serial.terms().size(), parallel.terms().size());
      for (std::size_t i = 0; i < serial.terms().size(); ++i) {
        EXPECT_EQ(serial.Neighbors(i), parallel.Neighbors(i))
            << "kind=" << static_cast<int>(kind) << " threads=" << t
            << " term " << i << " ('" << serial.terms()[i] << "')";
      }
    }
  }
}

// --- SimilarityMatrix: every cell written by exactly one row chunk ---

TEST(ParallelDeterminismTest, SimilarityMatrixCells) {
  for (std::size_t n : CorpusSizes()) {
    const BuiltFeatures built =
        Featurize(Corpus(n), TermSimilarityKind::kLcs, 1);
    const SimilarityMatrix serial(built.features, 1);
    for (std::size_t t : ThreadCounts()) {
      const SimilarityMatrix parallel(built.features, t);
      ASSERT_EQ(serial.size(), parallel.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        for (std::size_t j = 0; j < serial.size(); ++j) {
          ASSERT_EQ(serial.At(i, j), parallel.At(i, j))
              << "n=" << n << " threads=" << t << " cell (" << i << ", "
              << j << ")";
        }
      }
    }
  }
}

// --- Feature vectors through the parallel index build ---

TEST(ParallelDeterminismTest, FeatureVectors) {
  const SchemaCorpus corpus = Corpus(CorpusSizes().front());
  for (TermSimilarityKind kind :
       {TermSimilarityKind::kStem, TermSimilarityKind::kLcs}) {
    const BuiltFeatures serial = Featurize(corpus, kind, 1);
    for (std::size_t t : ThreadCounts()) {
      const BuiltFeatures parallel = Featurize(corpus, kind, t);
      ASSERT_EQ(serial.features.size(), parallel.features.size());
      for (std::size_t i = 0; i < serial.features.size(); ++i) {
        EXPECT_TRUE(serial.features[i] == parallel.features[i])
            << "kind=" << static_cast<int>(kind) << " threads=" << t
            << " schema " << i;
      }
    }
  }
}

// --- HAC: identical dendrogram for every linkage at every thread count ---

struct HacParam {
  std::size_t corpus_size;
  LinkageKind linkage;
};

class ParallelHacTest : public ::testing::TestWithParam<HacParam> {};

TEST_P(ParallelHacTest, DendrogramBitIdentical) {
  HacParam p = GetParam();
  if (SmallMode()) p.corpus_size = p.corpus_size > 100 ? 120 : 60;
  const BuiltFeatures built =
      Featurize(Corpus(p.corpus_size), TermSimilarityKind::kLcs, 1);
  const SimilarityMatrix sims(built.features, 1);

  HacOptions opts;
  opts.linkage = p.linkage;
  opts.tau_c_sim = 0.25;
  const auto serial = Hac::Run(built.features, sims, opts);
  ASSERT_TRUE(serial.ok()) << serial.status();

  AssignmentOptions assign;
  const auto serial_model = AssignProbabilities(sims, *serial, assign);
  ASSERT_TRUE(serial_model.ok()) << serial_model.status();

  for (std::size_t t : ThreadCounts()) {
    HacOptions popts = opts;
    popts.num_threads = t;
    const auto parallel = Hac::Run(built.features, sims, popts);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    const std::string label = LinkageKindName(p.linkage) + " n=" +
                              std::to_string(p.corpus_size) +
                              " threads=" + std::to_string(t);
    ExpectIdenticalMerges(*serial, *parallel, label);

    // The probabilistic domain scores derived from the parallel clustering
    // must also match bitwise.
    const auto parallel_model = AssignProbabilities(sims, *parallel, assign);
    ASSERT_TRUE(parallel_model.ok()) << parallel_model.status();
    ASSERT_EQ(serial_model->num_schemas(), parallel_model->num_schemas());
    for (std::uint32_t s = 0; s < serial_model->num_schemas(); ++s) {
      EXPECT_EQ(serial_model->DomainsOf(s), parallel_model->DomainsOf(s))
          << label << " schema " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLinkages, ParallelHacTest,
    ::testing::Values(HacParam{100, LinkageKind::kAverage},
                      HacParam{100, LinkageKind::kMin},
                      HacParam{100, LinkageKind::kMax},
                      HacParam{100, LinkageKind::kTotal},
                      HacParam{400, LinkageKind::kAverage},
                      HacParam{400, LinkageKind::kMin},
                      HacParam{400, LinkageKind::kMax},
                      HacParam{400, LinkageKind::kTotal}));

// --- Convenience overload: parallel matrix + parallel HAC end to end ---

TEST(ParallelDeterminismTest, ConvenienceOverloadEndToEnd) {
  const BuiltFeatures built =
      Featurize(Corpus(CorpusSizes().front()), TermSimilarityKind::kLcs, 1);
  HacOptions serial_opts;
  const auto serial = Hac::Run(built.features, serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (std::size_t t : ThreadCounts()) {
    HacOptions popts;
    popts.num_threads = t;
    const auto parallel = Hac::Run(built.features, popts);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectIdenticalMerges(*serial, *parallel,
                          "convenience threads=" + std::to_string(t));
  }
}

// --- Thread count 0 (hardware concurrency) is also deterministic ---

TEST(ParallelDeterminismTest, HardwareConcurrencyMatchesSerial) {
  const BuiltFeatures built =
      Featurize(Corpus(CorpusSizes().front()), TermSimilarityKind::kLcs, 1);
  const SimilarityMatrix sims(built.features, 1);
  HacOptions serial_opts;
  const auto serial = Hac::Run(built.features, sims, serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status();
  HacOptions hw_opts;
  hw_opts.num_threads = 0;  // resolve to hardware_concurrency
  const auto hw = Hac::Run(built.features, sims, hw_opts);
  ASSERT_TRUE(hw.ok()) << hw.status();
  ExpectIdenticalMerges(*serial, *hw, "threads=hardware");
}

}  // namespace
}  // namespace paygo
