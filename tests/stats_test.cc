#include "obs/stats.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/server_metrics.h"
#include "serve/slow_query_log.h"
#include "strict_json.h"

namespace paygo {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, SetAddAndNegativeValues) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(LatencyHistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(0), 1u);
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(1), 2u);
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(10), 1024u);
  EXPECT_EQ(
      LatencyHistogram::BucketUpperMicros(LatencyHistogram::kNumBuckets - 1),
      LatencyHistogram::kOverflowBoundMicros);
}

TEST(LatencyHistogramTest, CountSumAndMean) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.MeanMicros(), 0.0);
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumMicros(), 60u);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 20.0);
}

TEST(LatencyHistogramTest, PercentileReturnsBucketUpperBound) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(3);   // bucket (2, 4]
  h.Record(1000);                             // bucket (512, 1024]
  EXPECT_EQ(h.PercentileMicros(0.5), 4u);
  EXPECT_EQ(h.PercentileMicros(0.98), 4u);
  EXPECT_EQ(h.PercentileMicros(1.0), 1024u);
}

TEST(LatencyHistogramTest, FullPercentileSaturatesAtOverflowBound) {
  LatencyHistogram h;
  h.Record(5);
  // Far beyond the overflow bound: the documented contract is that p = 1.0
  // reports kOverflowBoundMicros, not the true maximum.
  h.Record(LatencyHistogram::kOverflowBoundMicros * 10);
  EXPECT_EQ(h.PercentileMicros(1.0), LatencyHistogram::kOverflowBoundMicros);
  // Out-of-range p is clamped rather than UB.
  EXPECT_EQ(h.PercentileMicros(7.0), LatencyHistogram::kOverflowBoundMicros);
  EXPECT_EQ(h.PercentileMicros(-1.0), h.PercentileMicros(0.0));
}

TEST(LatencyHistogramTest, ResetZeroesEverything) {
  LatencyHistogram h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumMicros(), 0u);
  EXPECT_EQ(h.PercentileMicros(0.5), 0u);
}

TEST(StatsRegistryTest, GetReturnsStablePointers) {
  StatsRegistry reg;
  Counter* a = reg.GetCounter("paygo.test.counter");
  Counter* b = reg.GetCounter("paygo.test.counter");
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(b->value(), 7u);
  Gauge* g = reg.GetGauge("paygo.test.gauge");
  LatencyHistogram* h = reg.GetHistogram("paygo.test.hist");
  EXPECT_NE(g, nullptr);
  EXPECT_NE(h, nullptr);
  // Reset zeroes values but keeps registrations (and pointer validity).
  reg.ResetForTest();
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(reg.GetCounter("paygo.test.counter"), a);
}

TEST(StatsRegistryTest, ToTextListsMetricsSorted) {
  StatsRegistry reg;
  reg.GetCounter("paygo.b.counter")->Add(2);
  reg.GetGauge("paygo.a.gauge")->Set(-3);
  const std::string text = reg.ToText();
  const std::size_t a_pos = text.find("paygo.a.gauge");
  const std::size_t b_pos = text.find("paygo.b.counter");
  ASSERT_NE(a_pos, std::string::npos) << text;
  ASSERT_NE(b_pos, std::string::npos) << text;
  EXPECT_LT(a_pos, b_pos);
  EXPECT_NE(text.find("-3"), std::string::npos);
}

TEST(StatsRegistryTest, ToJsonIsStrictlyValid) {
  StatsRegistry reg;
  reg.GetCounter("paygo.json.counter")->Add(5);
  reg.GetGauge("paygo.json.gauge")->Set(-12);
  LatencyHistogram* h = reg.GetHistogram("paygo.json.hist");
  h->Record(100);
  h->Record(2000);
  const std::string json = reg.ToJson();
  EXPECT_TRUE(strict_json::IsValid(json))
      << strict_json::ErrorOf(json) << "\n" << json;
  EXPECT_NE(json.find("\"paygo.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
}

TEST(StatsRegistryTest, EmptyRegistryJsonIsValid) {
  StatsRegistry reg;
  const std::string json = reg.ToJson();
  EXPECT_TRUE(strict_json::IsValid(json)) << strict_json::ErrorOf(json);
}

TEST(StatsRegistryTest, PrometheusSanitizesNamesAndExpandsHistograms) {
  StatsRegistry reg;
  reg.GetCounter("paygo.hac.merges")->Add(3);
  reg.GetHistogram("paygo.serve.latency-us")->Record(50);
  const std::string prom = reg.ToPrometheus();
  // Dots and dashes become underscores; no raw '.' may survive in names.
  EXPECT_NE(prom.find("paygo_hac_merges 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("paygo_serve_latency_us_bucket"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("paygo_serve_latency_us_sum"), std::string::npos);
  EXPECT_NE(prom.find("paygo_serve_latency_us_count 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE paygo_hac_merges counter"), std::string::npos);
}

TEST(StatsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&StatsRegistry::Global(), &StatsRegistry::Global());
}

TEST(ServerMetricsTest, ToJsonIsStrictlyValid) {
  ServerMetrics m;
  m.requests_submitted.fetch_add(10);
  m.requests_completed.fetch_add(9);
  m.cache_hits.fetch_add(4);
  m.cache_misses.fetch_add(6);
  m.classify_latency.Record(150);
  m.classify_latency.Record(90000);
  m.keyword_search_latency.Record(20);
  m.structured_latency.Record(7);
  const std::string json = m.ToJson();
  EXPECT_TRUE(strict_json::IsValid(json))
      << strict_json::ErrorOf(json) << "\n" << json;
}

SlowQueryEntry MakeEntry(std::uint64_t trace_id, const char* kind,
                         std::string query, std::uint64_t total_us) {
  SlowQueryEntry e;
  e.trace_id = trace_id;
  e.kind = kind;
  e.query = std::move(query);
  e.total_us = total_us;
  e.snapshot_generation = 1;
  return e;
}

TEST(SlowQueryLogTest, KeepsWorstRequestsSorted) {
  SlowQueryLog log(/*capacity=*/3, /*threshold_us=*/100);
  log.MaybeRecord(MakeEntry(1, "classify", "fast", 50));  // under threshold
  log.MaybeRecord(MakeEntry(2, "classify", "slow-a", 300));
  log.MaybeRecord(MakeEntry(3, "classify", "slow-b", 500));
  log.MaybeRecord(MakeEntry(4, "classify", "slow-c", 200));
  // Log is full at 3: a 150us request is over threshold but not among the
  // worst, so it is counted yet not admitted.
  log.MaybeRecord(MakeEntry(5, "classify", "slow-d", 150));
  log.MaybeRecord(MakeEntry(6, "classify", "slow-e", 400));  // evicts 200
  const std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].total_us, 500u);
  EXPECT_EQ(entries[1].total_us, 400u);
  EXPECT_EQ(entries[2].total_us, 300u);
  EXPECT_EQ(log.OverThresholdCount(), 5u);
  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_EQ(log.OverThresholdCount(), 0u);
}

TEST(SlowQueryLogTest, ToJsonWithSpansIsStrictlyValid) {
  SlowQueryLog log(/*capacity=*/4, /*threshold_us=*/0);
  SlowQueryEntry e = MakeEntry(9, "keyword_search",
                               "quote\" slash\\ tab\tnl\n\x01", 900);
  e.spans.push_back({"serve.request", 0, 900, 0});
  e.spans.push_back({"serve.queue_wait", 0, 100, 1});
  log.MaybeRecord(std::move(e));
  const std::string json = log.ToJson();
  EXPECT_TRUE(strict_json::IsValid(json))
      << strict_json::ErrorOf(json) << "\n" << json;
  EXPECT_NE(json.find("serve.queue_wait"), std::string::npos);
  const std::string debug = log.DebugString();
  EXPECT_NE(debug.find("serve.request"), std::string::npos);
}

TEST(SlowQueryLogTest, ZeroCapacityNeverRecords) {
  SlowQueryLog log(/*capacity=*/0, /*threshold_us=*/0);
  log.MaybeRecord(MakeEntry(1, "classify", "q", 99999));
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_EQ(log.OverThresholdCount(), 0u);
}

TEST(StrictJsonTest, RejectsMalformedDocuments) {
  EXPECT_TRUE(strict_json::IsValid("{}"));
  EXPECT_TRUE(strict_json::IsValid("[1, 2.5, -3e2, \"x\", null, true]"));
  EXPECT_TRUE(strict_json::IsValid("{\"a\": {\"b\": [0]}}"));
  // The failure modes this harness exists to catch:
  EXPECT_FALSE(strict_json::IsValid("{\"a\": 1,}"));       // trailing comma
  EXPECT_FALSE(strict_json::IsValid("[1, 2,]"));           // trailing comma
  EXPECT_FALSE(strict_json::IsValid("{a: 1}"));            // unquoted key
  EXPECT_FALSE(strict_json::IsValid("{\"a\": 01}"));       // leading zero
  EXPECT_FALSE(strict_json::IsValid("{\"a\": nan}"));      // bare NaN
  EXPECT_FALSE(strict_json::IsValid("{\"a\": 1} extra"));  // trailing junk
  EXPECT_FALSE(strict_json::IsValid("{\"a\": \"unterminated"));
  EXPECT_FALSE(strict_json::IsValid(""));
  EXPECT_FALSE(strict_json::IsValid("{\"a\" 1}"));  // missing colon
}

}  // namespace
}  // namespace paygo
