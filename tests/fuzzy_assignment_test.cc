#include "cluster/fuzzy_assignment.h"

#include <gtest/gtest.h>

#include <cmath>

namespace paygo {
namespace {

/// Two clusters with a schema (index 4) half way between them.
struct Fixture {
  std::vector<DynamicBitset> features;
  SimilarityMatrix sims;
  HacResult clustering;

  Fixture() : features(Make()), sims(features) {
    clustering.clusters = {{0, 1}, {2, 3}, {4}};
  }

  static std::vector<DynamicBitset> Make() {
    std::vector<DynamicBitset> f(5, DynamicBitset(12));
    // Clusters are tight but not degenerate (no identical vectors), so
    // schema-to-own-cluster distances stay strictly positive.
    for (std::size_t b : {0u, 1u, 2u, 3u}) f[0].Set(b);
    for (std::size_t b : {0u, 1u, 2u, 4u}) f[1].Set(b);
    for (std::size_t b : {6u, 7u, 8u, 9u}) f[2].Set(b);
    for (std::size_t b : {6u, 7u, 8u, 10u}) f[3].Set(b);
    for (std::size_t b : {0u, 1u, 6u, 7u}) f[4].Set(b);
    return f;
  }
};

TEST(FuzzyAssignmentTest, MembershipsSumToOne) {
  Fixture fx;
  const auto model = AssignFuzzyMemberships(fx.sims, fx.clustering, {});
  ASSERT_TRUE(model.ok()) << model.status();
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(model->TotalMembership(i), 1.0, 1e-9) << "schema " << i;
  }
}

TEST(FuzzyAssignmentTest, TightMembersFavorTheirOwnCluster) {
  Fixture fx;
  const auto model = AssignFuzzyMemberships(fx.sims, fx.clustering, {});
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Membership(0, 0), 0.5);
  EXPECT_GT(model->Membership(2, 1), 0.5);
}

TEST(FuzzyAssignmentTest, ZeroDistanceShortCircuitsToCertainty) {
  // Schema 4's own singleton cluster has distance 0 (self-similarity 1),
  // so the standard FCM short-circuit gives it full membership there.
  Fixture fx;
  const auto model = AssignFuzzyMemberships(fx.sims, fx.clustering, {});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Membership(4, 2), 1.0);
}

TEST(FuzzyAssignmentTest, BoundarySchemaSplitsWithoutOwnCluster) {
  // Drop the singleton cluster: schema 4 must split between the two
  // remaining clusters with equal membership (it is equidistant).
  Fixture fx;
  fx.clustering.clusters = {{0, 1}, {2, 3}};
  const auto model = AssignFuzzyMemberships(fx.sims, fx.clustering, {});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Membership(4, 0), 0.5, 1e-9);
  EXPECT_NEAR(model->Membership(4, 1), 0.5, 1e-9);
}

TEST(FuzzyAssignmentTest, LargerFuzzifierSoftensMemberships) {
  Fixture fx;
  fx.clustering.clusters = {{0, 1}, {2, 3}};
  FuzzyAssignmentOptions crisp;
  crisp.fuzzifier = 1.2;
  crisp.membership_cutoff = 0.0;
  FuzzyAssignmentOptions soft;
  soft.fuzzifier = 4.0;
  soft.membership_cutoff = 0.0;
  const auto mc = AssignFuzzyMemberships(fx.sims, fx.clustering, crisp);
  const auto ms = AssignFuzzyMemberships(fx.sims, fx.clustering, soft);
  ASSERT_TRUE(mc.ok());
  ASSERT_TRUE(ms.ok());
  // Schema 0 is far from cluster 1; crisp fuzzifier concentrates its
  // membership at home more than the soft one.
  EXPECT_GT(mc->Membership(0, 0), ms->Membership(0, 0));
}

TEST(FuzzyAssignmentTest, CutoffTruncatesTails) {
  Fixture fx;
  fx.clustering.clusters = {{0, 1}, {2, 3}};
  FuzzyAssignmentOptions opts;
  opts.membership_cutoff = 0.4;
  const auto model = AssignFuzzyMemberships(fx.sims, fx.clustering, opts);
  ASSERT_TRUE(model.ok());
  // Schema 0's weak membership in cluster 1 vanishes; home renormalizes
  // to 1.
  EXPECT_DOUBLE_EQ(model->Membership(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(model->Membership(0, 0), 1.0);
}

TEST(FuzzyAssignmentTest, AllBelowCutoffKeepsBestSingleMembership) {
  Fixture fx;
  fx.clustering.clusters = {{0, 1}, {2, 3}};
  FuzzyAssignmentOptions opts;
  opts.membership_cutoff = 0.9;  // nothing for the boundary schema passes
  const auto model = AssignFuzzyMemberships(fx.sims, fx.clustering, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->TotalMembership(4), 1.0, 1e-9);
  EXPECT_EQ(model->DomainsOf(4).size(), 1u);
}

TEST(FuzzyAssignmentTest, InvalidOptionsRejected) {
  Fixture fx;
  FuzzyAssignmentOptions opts;
  opts.fuzzifier = 1.0;
  EXPECT_TRUE(AssignFuzzyMemberships(fx.sims, fx.clustering, opts)
                  .status()
                  .IsInvalidArgument());
  opts.fuzzifier = 2.0;
  opts.membership_cutoff = 1.0;
  EXPECT_TRUE(AssignFuzzyMemberships(fx.sims, fx.clustering, opts)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paygo
