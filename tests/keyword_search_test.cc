#include "integrate/keyword_search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/integration_system.h"

namespace paygo {
namespace {

/// Travel + bibliography system with tuples, for the thesis's motivating
/// query "departure Toronto destination Cairo".
struct Fixture {
  std::unique_ptr<IntegrationSystem> sys;
  std::uint32_t travel = 0;
  std::uint32_t biblio = 0;

  Fixture() {
    SchemaCorpus corpus;
    corpus.Add(Schema("expedia", {"departure airport", "destination airport",
                                  "airline"}));
    corpus.Add(Schema("orbitz", {"departure airport", "destination",
                                 "airline"}));
    corpus.Add(Schema("dblp", {"title", "authors", "journal"}));
    corpus.Add(Schema("citeseer", {"title", "authors", "publisher"}));
    SystemOptions opts;
    opts.hac.tau_c_sim = 0.25;
    opts.assignment.tau_c_sim = 0.25;
    auto built = IntegrationSystem::Build(std::move(corpus), opts);
    sys = std::move(built).value();
    travel = sys->domains().DomainsOf(0)[0].first;
    biblio = sys->domains().DomainsOf(2)[0].first;
    (void)sys->AttachTuples(0, {Tuple({"Toronto", "Cairo", "EgyptAir"}),
                                Tuple({"Munich", "Oslo", "Lufthansa"})});
    (void)sys->AttachTuples(1, {Tuple({"Toronto", "Cairo", "EgyptAir"}),
                                Tuple({"Paris", "Rome", "AirFrance"})});
    (void)sys->AttachTuples(2, {Tuple({"Data Integration", "Halevy",
                                       "VLDBJ"})});
    (void)sys->AttachTuples(3, {Tuple({"Query Answering", "Lenzerini",
                                       "PODS"})});
  }
};

TEST(KeywordSearchTest, MotivatingQuerySurfacesTheRightTuple) {
  Fixture fx;
  const auto answer =
      fx.sys->AnswerKeywordQuery("departure Toronto destination Cairo");
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_FALSE(answer->hits.empty());
  // Top hit: the Toronto-Cairo flight, consolidated across both sources.
  const KeywordHit& top = answer->hits[0];
  EXPECT_EQ(top.domain, fx.travel);
  bool has_toronto = false, has_cairo = false;
  for (const std::string& v : top.tuple.values) {
    if (v == "Toronto") has_toronto = true;
    if (v == "Cairo") has_cairo = true;
  }
  EXPECT_TRUE(has_toronto);
  EXPECT_TRUE(has_cairo);
  EXPECT_EQ(top.value_matches, 2u);
  EXPECT_EQ(top.sources.size(), 2u);  // expedia + orbitz
  // The Munich-Oslo flight matches no value keyword and ranks below.
  for (std::size_t k = 1; k < answer->hits.size(); ++k) {
    EXPECT_LE(answer->hits[k].score, top.score + 1e-12);
  }
}

TEST(KeywordSearchTest, ValueKeywordsBeatNonMatchingTuples) {
  Fixture fx;
  const auto answer = fx.sys->AnswerKeywordQuery("departure Munich");
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->hits.empty());
  bool munich_in_top = false;
  for (const std::string& v : answer->hits[0].tuple.values) {
    if (v == "Munich") munich_in_top = true;
  }
  EXPECT_TRUE(munich_in_top);
}

TEST(KeywordSearchTest, ScoresBoundedAndSorted) {
  Fixture fx;
  const auto answer = fx.sys->AnswerKeywordQuery("title authors journal");
  ASSERT_TRUE(answer.ok());
  double prev = 2.0;
  for (const KeywordHit& h : answer->hits) {
    EXPECT_GT(h.score, 0.0);
    EXPECT_LE(h.score, 1.0 + 1e-12);
    EXPECT_LE(h.score, prev + 1e-12);
    prev = h.score;
  }
  // The bibliography domain leads for this query.
  EXPECT_EQ(answer->hits[0].domain, fx.biblio);
}

TEST(KeywordSearchTest, MaxHitsRespected) {
  Fixture fx;
  KeywordSearchOptions opts;
  opts.max_hits = 2;
  const auto answer = fx.sys->AnswerKeywordQuery("departure", opts);
  ASSERT_TRUE(answer.ok());
  EXPECT_LE(answer->hits.size(), 2u);
}

TEST(KeywordSearchTest, RequiresMediation) {
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"alpha", "beta"}));
  SystemOptions opts;
  opts.build_mediation = false;
  auto sys = IntegrationSystem::Build(corpus, opts);
  ASSERT_TRUE(sys.ok());
  EXPECT_TRUE(
      (*sys)->AnswerKeywordQuery("alpha").status().IsFailedPrecondition());
}

TEST(MergeKeywordHitsTest, GlobalOrderAndTruncation) {
  std::vector<std::vector<KeywordHit>> per_domain(2);
  for (double s : {0.3, 0.9}) {
    KeywordHit h;
    h.domain = 0;
    h.score = s;
    per_domain[0].push_back(h);
  }
  KeywordHit mid;
  mid.domain = 1;
  mid.score = 0.5;
  per_domain[1].push_back(mid);
  const auto merged = MergeKeywordHits(std::move(per_domain), 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].score, 0.9);
  EXPECT_DOUBLE_EQ(merged[1].score, 0.5);
}

TEST(SearchDomainTuplesTest, ValidatesInputs) {
  DomainMediation med;
  EXPECT_TRUE(SearchDomainTuples(0, 1.5, med, {}, {"k"})
                  .status()
                  .IsInvalidArgument());
  KeywordSearchOptions opts;
  opts.value_match_boost = -1.0;
  EXPECT_TRUE(SearchDomainTuples(0, 0.5, med, {}, {"k"}, opts)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paygo
