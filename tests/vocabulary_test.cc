#include "synth/vocabulary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "text/tokenizer.h"

namespace paygo {
namespace {

TEST(VariantsTest, ParsesPipeSeparatedForms) {
  const AttributeVariants v = Variants("a|b|c");
  EXPECT_EQ(v.forms, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Variants("single").forms.size(), 1u);
}

TEST(SharedPoolsTest, AllPoolsNonEmptyWithNonEmptyForms) {
  for (const AttributePool& pool : SharedAttributePools()) {
    EXPECT_FALSE(pool.name.empty());
    EXPECT_FALSE(pool.attributes.empty());
    for (const AttributeVariants& v : pool.attributes) {
      EXPECT_FALSE(v.forms.empty());
      for (const std::string& f : v.forms) EXPECT_FALSE(f.empty());
    }
  }
}

TEST(SharedPoolsTest, LookupByNameWorks) {
  EXPECT_EQ(SharedPool("person").name, "person");
  EXPECT_EQ(SharedPool("datetime").name, "datetime");
}

TEST(TemplatesTest, DdhHasTheFiveThesisDomains) {
  const auto& templates = DdhDomainTemplates();
  ASSERT_EQ(templates.size(), 5u);
  std::set<std::string> labels;
  for (const auto& t : templates) labels.insert(t.label);
  EXPECT_EQ(labels, (std::set<std::string>{"bibliography", "cars", "courses",
                                           "movies", "people"}));
}

TEST(TemplatesTest, DdhCoresAreLargeAndWellSeparated) {
  Tokenizer tok;
  const auto& templates = DdhDomainTemplates();
  std::vector<std::set<std::string>> term_sets;
  for (const auto& t : templates) {
    EXPECT_GE(t.core.size(), 15u) << t.label;
    std::set<std::string> terms;
    for (const auto& v : t.core) {
      for (const auto& f : v.forms) {
        for (const auto& term : tok.Tokenize(f)) terms.insert(term);
      }
    }
    term_sets.push_back(std::move(terms));
  }
  // Pairwise overlap must be small relative to core vocabulary (the
  // "sharply separated domains" property of Section 6.1.1).
  for (std::size_t i = 0; i < term_sets.size(); ++i) {
    for (std::size_t j = i + 1; j < term_sets.size(); ++j) {
      std::vector<std::string> common;
      std::set_intersection(term_sets[i].begin(), term_sets[i].end(),
                            term_sets[j].begin(), term_sets[j].end(),
                            std::back_inserter(common));
      const std::size_t smaller =
          std::min(term_sets[i].size(), term_sets[j].size());
      EXPECT_LT(static_cast<double>(common.size()),
                0.25 * static_cast<double>(smaller))
          << templates[i].label << " vs " << templates[j].label;
    }
  }
}

TEST(TemplatesTest, TemplateReferencesResolveToSharedPools) {
  for (const auto* templates : {&DwDomainTemplates(), &SsDomainTemplates()}) {
    for (const DomainTemplate& t : *templates) {
      for (const std::string& pool : t.shared_pools) {
        // SharedPool aborts on unknown names; reaching here means OK.
        EXPECT_FALSE(SharedPool(pool).name.empty()) << t.label;
      }
      EXPECT_GT(t.weight, 0.0) << t.label;
      EXPECT_FALSE(t.core.empty()) << t.label;
    }
  }
}

TEST(TemplatesTest, LabelsAreUniqueWithinEachTemplateSet) {
  for (const auto* templates : {&DdhDomainTemplates(), &DwDomainTemplates(),
                                &SsDomainTemplates()}) {
    std::set<std::string> labels;
    for (const DomainTemplate& t : *templates) {
      EXPECT_TRUE(labels.insert(t.label).second)
          << "duplicate label " << t.label;
    }
  }
}

TEST(TemplatesTest, SsReusedLabelsExistInDw) {
  std::set<std::string> dw_labels;
  for (const auto& t : DwDomainTemplates()) dw_labels.insert(t.label);
  for (const std::string& label : SsReusedDwLabels()) {
    EXPECT_TRUE(dw_labels.count(label)) << label;
  }
}

TEST(UniqueSpecsTest, EnoughEntriesForBothCorpora) {
  // DW consumes entries [0, 16); SS consumes [16, 79).
  EXPECT_GE(UniqueSchemaSpecs().size(), 79u);
}

TEST(UniqueSpecsTest, AttributeSetsArePairwiseTermDisjoint) {
  Tokenizer tok;
  const auto& specs = UniqueSchemaSpecs();
  std::vector<std::set<std::string>> term_sets;
  for (const auto& spec : specs) {
    std::set<std::string> terms;
    for (const std::string& attr : spec.attributes) {
      for (const std::string& t : tok.Tokenize(attr)) terms.insert(t);
    }
    EXPECT_FALSE(terms.empty()) << spec.label;
    term_sets.push_back(std::move(terms));
  }
  // A unique schema must not share more than one term with any other
  // unique schema, else they could cluster together.
  for (std::size_t i = 0; i < term_sets.size(); ++i) {
    for (std::size_t j = i + 1; j < term_sets.size(); ++j) {
      std::vector<std::string> common;
      std::set_intersection(term_sets[i].begin(), term_sets[i].end(),
                            term_sets[j].begin(), term_sets[j].end(),
                            std::back_inserter(common));
      EXPECT_LE(common.size(), 1u)
          << specs[i].label << "[" << i << "] vs " << specs[j].label << "["
          << j << "]: shared terms include "
          << (common.empty() ? "" : common[0]);
    }
  }
}

TEST(UniqueSpecsTest, AppendixLabelsCovered) {
  // A sample of the thesis's Appendix A labels that only unique schemas
  // carry.
  std::set<std::string> labels;
  for (const auto& spec : UniqueSchemaSpecs()) labels.insert(spec.label);
  for (const char* expected :
       {"airdisasters", "chess", "interments", "vulnerabilities", "windows",
        "robots", "genes", "codeofconduct"}) {
    EXPECT_TRUE(labels.count(expected)) << expected;
  }
}

}  // namespace
}  // namespace paygo
