#include "text/similarity_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/stats.h"
#include "util/random.h"

namespace paygo {
namespace {

std::vector<std::string> Lexicon1() {
  return {"author",  "authors",   "departure", "departures", "departing",
          "title",   "professor", "name",      "make",       "model"};
}

TEST(SimilarityIndexTest, NeighborhoodsIncludeSelf) {
  SimilarityIndex idx(Lexicon1(), TermSimilarity(TermSimilarityKind::kLcs),
                      0.8);
  for (std::size_t i = 0; i < idx.terms().size(); ++i) {
    const auto& nb = idx.Neighbors(i);
    EXPECT_TRUE(std::find(nb.begin(), nb.end(), i) != nb.end());
  }
}

TEST(SimilarityIndexTest, PluralsAreNeighbors) {
  const auto terms = Lexicon1();
  SimilarityIndex idx(terms, TermSimilarity(TermSimilarityKind::kLcs), 0.8);
  const auto author_it = std::find(terms.begin(), terms.end(), "author");
  const auto authors_it = std::find(terms.begin(), terms.end(), "authors");
  const std::uint32_t a =
      static_cast<std::uint32_t>(author_it - terms.begin());
  const std::uint32_t as =
      static_cast<std::uint32_t>(authors_it - terms.begin());
  const auto& nb = idx.Neighbors(a);
  EXPECT_TRUE(std::find(nb.begin(), nb.end(), as) != nb.end());
}

TEST(SimilarityIndexTest, NeighborhoodsAreSymmetric) {
  SimilarityIndex idx(Lexicon1(), TermSimilarity(TermSimilarityKind::kLcs),
                      0.8);
  for (std::uint32_t i = 0; i < idx.terms().size(); ++i) {
    for (std::uint32_t j : idx.Neighbors(i)) {
      const auto& nb = idx.Neighbors(j);
      EXPECT_TRUE(std::find(nb.begin(), nb.end(), i) != nb.end());
    }
  }
}

TEST(SimilarityIndexTest, MatchFindsInLexiconTerm) {
  SimilarityIndex idx(Lexicon1(), TermSimilarity(TermSimilarityKind::kLcs),
                      0.8);
  const auto hits = idx.Match("departure");
  // departure matches itself and "departures".
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(idx.terms()[hits[0]], "departure");
  EXPECT_EQ(idx.terms()[hits[1]], "departures");
}

TEST(SimilarityIndexTest, MatchFindsOutOfLexiconVariant) {
  SimilarityIndex idx(Lexicon1(), TermSimilarity(TermSimilarityKind::kLcs),
                      0.8);
  // "titles" is not in the lexicon but matches "title".
  const auto hits = idx.Match("titles");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(idx.terms()[hits[0]], "title");
}

TEST(SimilarityIndexTest, MatchUnrelatedTermIsEmpty) {
  SimilarityIndex idx(Lexicon1(), TermSimilarity(TermSimilarityKind::kLcs),
                      0.8);
  EXPECT_TRUE(idx.Match("zzzzzz").empty());
  EXPECT_TRUE(idx.Match("").empty());
}

TEST(SimilarityIndexTest, StemKindGroupsByStem) {
  std::vector<std::string> terms = {"rating", "ratings", "rated", "price"};
  SimilarityIndex idx(terms, TermSimilarity(TermSimilarityKind::kStem), 0.5);
  // rating & ratings share the stem "rate"... verify via Match.
  const auto hits = idx.Match("rating");
  EXPECT_GE(hits.size(), 2u);
}

TEST(SimilarityIndexTest, ExactKindIsIdentityOnly) {
  SimilarityIndex idx(Lexicon1(), TermSimilarity(TermSimilarityKind::kExact),
                      0.5);
  for (std::size_t i = 0; i < idx.terms().size(); ++i) {
    EXPECT_EQ(idx.Neighbors(i).size(), 1u);
  }
}

/// Property: the prefiltered neighborhoods match an exhaustive O(V^2)
/// reference at both a high threshold (bigram prune active) and a low one
/// (exhaustive fallback).
class SimilarityIndexPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SimilarityIndexPropertyTest, AgreesWithExhaustiveReference) {
  const double tau = GetParam();
  Rng rng(1234);
  const std::string alphabet = "abcdefgh";
  std::vector<std::string> terms;
  for (int i = 0; i < 60; ++i) {
    std::string t;
    const std::size_t len = 3 + rng.NextBelow(8);
    for (std::size_t k = 0; k < len; ++k) {
      t.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    terms.push_back(std::move(t));
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  TermSimilarity sim(TermSimilarityKind::kLcs);
  SimilarityIndex idx(terms, sim, tau);
  for (std::uint32_t i = 0; i < terms.size(); ++i) {
    std::vector<std::uint32_t> expected;
    for (std::uint32_t j = 0; j < terms.size(); ++j) {
      if (i == j || sim.Compute(terms[i], terms[j]) >= tau) {
        expected.push_back(j);
      }
    }
    EXPECT_EQ(idx.Neighbors(i), expected) << "term " << terms[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SimilarityIndexPropertyTest,
                         ::testing::Values(0.3, 0.5, 0.7, 0.8, 0.9));

TEST(SimilarityIndexTest, BuildStatsAggregateOncePerBuild) {
  // Build instrumentation is accumulated per scan chunk and flushed to the
  // registry exactly once per build: a parallel build must report the SAME
  // counter deltas as the serial build of the same lexicon (no tearing, no
  // per-call-site double counting).
  std::vector<std::string> terms;
  Rng rng(4321);
  for (int i = 0; i < 120; ++i) {
    std::string t;
    const std::size_t len = 4 + rng.NextBelow(8);
    for (std::size_t k = 0; k < len; ++k) {
      t.push_back(static_cast<char>('a' + rng.NextBelow(12)));
    }
    terms.push_back(std::move(t));
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  StatsRegistry& reg = StatsRegistry::Global();
  Counter* builds = reg.GetCounter("paygo.simindex.builds");
  Counter* evaluated = reg.GetCounter("paygo.simindex.pairs_evaluated");
  Counter* pruned = reg.GetCounter("paygo.simindex.pairs_pruned");

  const std::uint64_t builds0 = builds->value();
  const std::uint64_t evaluated0 = evaluated->value();
  const std::uint64_t pruned0 = pruned->value();
  SimilarityIndex serial(terms, TermSimilarity(TermSimilarityKind::kLcs), 0.8,
                         /*num_threads=*/1);
  const std::uint64_t serial_builds = builds->value() - builds0;
  const std::uint64_t serial_evaluated = evaluated->value() - evaluated0;
  const std::uint64_t serial_pruned = pruned->value() - pruned0;
  EXPECT_EQ(serial_builds, 1u);
  EXPECT_GT(serial_evaluated + serial_pruned, 0u);

  const std::uint64_t builds1 = builds->value();
  const std::uint64_t evaluated1 = evaluated->value();
  const std::uint64_t pruned1 = pruned->value();
  SimilarityIndex parallel(terms, TermSimilarity(TermSimilarityKind::kLcs),
                           0.8, /*num_threads=*/4);
  EXPECT_EQ(builds->value() - builds1, 1u);
  EXPECT_EQ(evaluated->value() - evaluated1, serial_evaluated);
  EXPECT_EQ(pruned->value() - pruned1, serial_pruned);

  for (std::size_t i = 0; i < terms.size(); ++i) {
    ASSERT_EQ(serial.Neighbors(i), parallel.Neighbors(i)) << "term " << i;
  }
}

}  // namespace
}  // namespace paygo
