#include "persist/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "synth/web_generator.h"

namespace paygo {
namespace {

DomainModel SampleModel() {
  return DomainModel::Build(
      {{0, 1}, {2, 3}, {4}},
      {{{0, 1.0}},
       {{0, 0.6}, {1, 0.4}},
       {{1, 1.0}},
       {{1, 1.0}},
       {{2, 1.0}}});
}

TEST(ModelIoTest, DomainModelRoundTrip) {
  const DomainModel model = SampleModel();
  const auto parsed = ParseDomainModel(SerializeDomainModel(model));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_domains(), model.num_domains());
  ASSERT_EQ(parsed->num_schemas(), model.num_schemas());
  for (std::uint32_t r = 0; r < model.num_domains(); ++r) {
    EXPECT_EQ(parsed->Cluster(r), model.Cluster(r));
  }
  for (std::uint32_t i = 0; i < model.num_schemas(); ++i) {
    for (std::uint32_t r = 0; r < model.num_domains(); ++r) {
      EXPECT_DOUBLE_EQ(parsed->Membership(i, r), model.Membership(i, r))
          << "schema " << i << " domain " << r;
    }
  }
}

TEST(ModelIoTest, ConditionalsRoundTripBitExact) {
  std::vector<DomainConditionals> conds(2);
  conds[0].prior = 0.123456789012345678;
  conds[0].q1 = {0.1, 1.0 / 3.0, 0.999999999999};
  conds[1].prior = 1e-17;
  conds[1].q1 = {0.5, 0.25, 0.75};
  const auto parsed = ParseConditionals(SerializeConditionals(conds));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ((*parsed)[r].prior, conds[r].prior);
    ASSERT_EQ((*parsed)[r].q1.size(), conds[r].q1.size());
    for (std::size_t j = 0; j < conds[r].q1.size(); ++j) {
      EXPECT_DOUBLE_EQ((*parsed)[r].q1[j], conds[r].q1[j]);
    }
  }
}

TEST(ModelIoTest, ParseRejectsGarbage) {
  EXPECT_TRUE(ParseDomainModel("nonsense").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDomainModel("paygo-model v1\nbogus directive\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseConditionals("paygo-classifier v1\nprior 5 0.1\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ParseDomainModel("paygo-model v1\ncounts 1 1\nmembership 0 9:0.5\n")
          .status()
          .IsInvalidArgument());
}

TEST(ModelIoTest, SnapshotRoundTripPreservesBehaviour) {
  SystemOptions options;
  options.hac.tau_c_sim = 0.25;
  options.assignment.tau_c_sim = 0.25;
  auto built = IntegrationSystem::Build(MakeDwCorpus(), options);
  ASSERT_TRUE(built.ok()) << built.status();
  const IntegrationSystem& original = **built;

  const std::string path = ::testing::TempDir() + "/paygo_snapshot_test.txt";
  ASSERT_TRUE(SaveSnapshot(original, path).ok());

  auto restored = LoadSnapshot(path, options);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const IntegrationSystem& copy = **restored;

  EXPECT_EQ(copy.corpus().size(), original.corpus().size());
  EXPECT_EQ(copy.domains().num_domains(), original.domains().num_domains());
  for (std::uint32_t r = 0; r < original.domains().num_domains(); ++r) {
    EXPECT_EQ(copy.domains().Cluster(r), original.domains().Cluster(r));
    EXPECT_DOUBLE_EQ(copy.classifier().Prior(r),
                     original.classifier().Prior(r));
  }
  // Queries rank identically on the restored system.
  for (const char* q :
       {"departure airline", "salary employer", "drug dosage",
        "hotel check in"}) {
    const auto a = original.ClassifyKeywordQuery(q);
    const auto b = copy.ClassifyKeywordQuery(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    EXPECT_EQ((*a)[0].domain, (*b)[0].domain) << q;
    EXPECT_DOUBLE_EQ((*a)[0].log_posterior, (*b)[0].log_posterior);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, SnapshotRequiresClassifier) {
  SystemOptions options;
  options.build_classifier = false;
  auto built = IntegrationSystem::Build(MakeDwCorpus(), options);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(SaveSnapshot(**built, "/tmp/should_not_matter.txt")
                  .IsFailedPrecondition());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadSnapshot("/nonexistent/snapshot.txt").status().IsIoError());
}

TEST(ModelIoTest, RestoreValidatesCorpusModelAgreement) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s", {"alpha"}), {});
  // Model says 5 schemas; corpus has 1.
  EXPECT_TRUE(IntegrationSystem::Restore(corpus, {}, SampleModel(), {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paygo
