#include "schema/multi_table.h"

#include "mediate/mediated_schema.h"

#include <gtest/gtest.h>

#include "cluster/hac.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"

namespace paygo {
namespace {

MultiTableSource UniversityDb() {
  MultiTableSource src;
  src.source_name = "universitydb";
  src.tables = {
      {"courses", {"course name", "course number", "instructor", "credits"}},
      {"enrollment", {"course number", "student name", "grade"}},
      {"faculty", {"first name", "last name", "office phone", "email"}},
  };
  return src;
}

TEST(MultiTableTest, PerTableDecomposition) {
  Tokenizer tok;
  const auto schemas = DecomposeMultiTableSource(UniversityDb(), tok, {});
  ASSERT_EQ(schemas.size(), 3u);
  EXPECT_EQ(schemas[0].source_name, "universitydb.courses");
  EXPECT_EQ(schemas[1].source_name, "universitydb.enrollment");
  EXPECT_EQ(schemas[2].source_name, "universitydb.faculty");
  EXPECT_EQ(schemas[0].attributes.size(), 4u);
}

TEST(MultiTableTest, JoinedDecompositionMergesSharedKeyTables) {
  Tokenizer tok;
  MultiTableOptions opts;
  opts.decomposition = MultiTableDecomposition::kJoined;
  const auto schemas = DecomposeMultiTableSource(UniversityDb(), tok, opts);
  // courses and enrollment share "course number" -> merged; faculty shares
  // nothing (no attribute reaches 0.8 name similarity) -> separate.
  ASSERT_EQ(schemas.size(), 2u);
  // The joined schema deduplicates "course number".
  const Schema* joined = nullptr;
  for (const Schema& s : schemas) {
    if (s.source_name.find('+') != std::string::npos) joined = &s;
  }
  ASSERT_NE(joined, nullptr);
  EXPECT_EQ(joined->attributes.size(), 4u + 3u - 1u);
  std::size_t count = 0;
  for (const std::string& a : joined->attributes) {
    if (CanonicalAttributeName(a) == "course number") ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(MultiTableTest, EmptyTablesSkipped) {
  Tokenizer tok;
  MultiTableSource src;
  src.source_name = "s";
  src.tables = {{"empty", {}}, {"real", {"alpha", "beta"}}};
  const auto schemas = DecomposeMultiTableSource(src, tok, {});
  ASSERT_EQ(schemas.size(), 1u);
  EXPECT_EQ(schemas[0].source_name, "s.real");
}

TEST(MultiTableTest, AllTablesDisjointStaySeparateUnderJoin) {
  Tokenizer tok;
  MultiTableSource src;
  src.source_name = "s";
  src.tables = {{"a", {"alpha", "beta"}}, {"b", {"gamma", "delta"}}};
  MultiTableOptions opts;
  opts.decomposition = MultiTableDecomposition::kJoined;
  const auto schemas = DecomposeMultiTableSource(src, tok, opts);
  EXPECT_EQ(schemas.size(), 2u);
}

TEST(MultiTableTest, CorpusFromSourcesCarriesLabels) {
  Tokenizer tok;
  const SchemaCorpus corpus = CorpusFromMultiTableSources(
      {UniversityDb()}, {{"education"}}, tok, {});
  ASSERT_EQ(corpus.size(), 3u);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus.labels(i), (std::vector<std::string>{"education"}));
  }
}

TEST(MultiTableTest, DecomposedTablesClusterIntoDifferentDomains) {
  // The point of per-table decomposition: one physical source can span
  // several conceptual domains. Combine the university DB with standalone
  // course/people sources and verify its tables separate.
  Tokenizer tok;
  SchemaCorpus corpus = CorpusFromMultiTableSources({UniversityDb()}, {}, tok,
                                                    {});
  corpus.Add(Schema("coursesite",
                    {"course name", "course number", "instructor",
                     "semester"}),
             {});
  corpus.Add(Schema("directory",
                    {"first name", "last name", "email", "phone"}),
             {});
  // Jaccard clustering over the mixed corpus.
  Lexicon lexicon = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lexicon);
  const auto features = vec.VectorizeCorpus();
  HacOptions hac;
  hac.tau_c_sim = 0.25;
  const auto clustering = Hac::Run(features, hac);
  ASSERT_TRUE(clustering.ok());
  // universitydb.courses (0) clusters with coursesite (3);
  // universitydb.faculty (2) clusters with directory (4).
  EXPECT_EQ(clustering->ClusterOf(0), clustering->ClusterOf(3));
  EXPECT_EQ(clustering->ClusterOf(2), clustering->ClusterOf(4));
  EXPECT_NE(clustering->ClusterOf(0), clustering->ClusterOf(2));
}

}  // namespace
}  // namespace paygo
