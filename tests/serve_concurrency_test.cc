/// \file serve_concurrency_test.cc
/// \brief Hammers one PaygoServer with concurrent readers and an AddSchema
/// writer loop, asserting every reader observes a coherent snapshot.
///
/// "Coherent" means the internally consistent invariants of a fully built
/// IntegrationSystem hold on every snapshot a reader loads, no matter how
/// the load interleaves with copy-on-write swaps:
///   * one feature vector per corpus schema,
///   * the domain model covers exactly the corpus schemas and its clusters
///     partition them (no torn domain counts),
///   * the published generation never moves backwards.
///
/// The test is the designated TSan workload: build with
/// `-DPAYGO_SANITIZE=thread` and any data race between the writer's clone
/// mutation and the readers' lock-free snapshot loads is a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/integration_system.h"
#include "obs/trace.h"
#include "serve/paygo_server.h"

namespace paygo {
namespace {

/// Keep tracing on for the whole test so the TSan run also covers the
/// lock-free trace rings and per-request span collectors under the same
/// reader/writer contention.
[[maybe_unused]] const bool kTracingEnabled = [] {
  Tracer::Enable();
  return true;
}();

SchemaCorpus SmallCorpus() {
  SchemaCorpus corpus("small");
  corpus.Add(Schema("expedia",
                    {"departure airport", "destination airport",
                     "departing", "returning", "airline"}),
             {"travel"});
  corpus.Add(Schema("orbitz",
                    {"departure airport", "destination", "airline",
                     "passengers"}),
             {"travel"});
  corpus.Add(Schema("kayak",
                    {"departure", "destination airport", "airline", "class"}),
             {"travel"});
  corpus.Add(Schema("dblp", {"title", "authors", "year of publish",
                             "conference name"}),
             {"bibliography"});
  corpus.Add(Schema("citeseer", {"title", "author", "year", "journal"}),
             {"bibliography"});
  corpus.Add(Schema("autotrader", {"make", "model", "year", "price"}),
             {"cars"});
  return corpus;
}

Schema ExtraSchema(int i) {
  Schema schema;
  schema.source_name = "live-" + std::to_string(i);
  schema.attributes = {"departure airport", "destination airport",
                       "airline", "fare " + std::to_string(i)};
  return schema;
}

/// Asserts the cross-component invariants of one immutable snapshot.
/// Returns the corpus size so callers can track growth.
std::size_t CheckCoherent(const PaygoServer::Snapshot& snap) {
  const std::size_t n = snap->corpus().size();
  EXPECT_EQ(snap->features().size(), n);
  EXPECT_EQ(snap->domains().num_schemas(), n);
  // The hard clusters behind the domains partition the corpus exactly:
  // a torn snapshot (old clusters, new corpus) would break this count.
  std::size_t clustered = 0;
  std::vector<bool> seen(n, false);
  for (const auto& cluster : snap->domains().clusters()) {
    clustered += cluster.size();
    for (std::uint32_t id : cluster) {
      EXPECT_LT(id, n);
      EXPECT_FALSE(seen[id]) << "schema " << id << " in two clusters";
      if (id < n) seen[id] = true;
    }
  }
  EXPECT_EQ(clustered, n);
  return n;
}

TEST(ServeConcurrencyTest, ReadersSeeCoherentSnapshotsDuringWrites) {
  constexpr int kReaders = 4;
  constexpr int kWrites = 8;

  auto built = IntegrationSystem::Build(SmallCorpus());
  ASSERT_TRUE(built.ok()) << built.status();
  const std::size_t initial_size = (*built)->corpus().size();

  ServeOptions options;
  options.num_workers = 2;
  options.queue_depth = 64;
  options.queue_timeout_ms = 0;  // never shed; readers assert success
  options.cache_capacity = 128;
  PaygoServer server(std::move(*built), options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> writes_done{false};
  std::atomic<std::uint64_t> total_reads{0};

  // Half the readers poll the lock-free snapshot directly (no queue); the
  // other half go through the admission-controlled Classify path, so both
  // read routes race the writer.
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_generation = 0;
      std::size_t last_size = initial_size;
      while (!writes_done.load(std::memory_order_acquire)) {
        const std::uint64_t gen_before = server.generation();
        const PaygoServer::Snapshot snap = server.snapshot();
        const std::size_t n = CheckCoherent(snap);
        // Corpus only grows, generation only advances.
        EXPECT_GE(n, last_size);
        EXPECT_GE(gen_before, last_generation);
        last_size = n;
        last_generation = gen_before;

        if (r % 2 == 0) {
          auto scores = server.Classify("departure airline travel");
          EXPECT_TRUE(scores.ok()) << scores.status();
          EXPECT_FALSE(scores->empty());
        }
        total_reads.fetch_add(1, std::memory_order_relaxed);
      }
      // One final full check against the settled snapshot.
      EXPECT_EQ(CheckCoherent(server.snapshot()),
                initial_size + kWrites);
    });
  }

  // Writer loop: sequential copy-on-write mutations racing the readers.
  for (int i = 0; i < kWrites; ++i) {
    Status s = server.AddSchemaAsync(ExtraSchema(i), {"travel"}).get();
    ASSERT_TRUE(s.ok()) << s;
  }
  EXPECT_EQ(server.generation(), static_cast<std::uint64_t>(kWrites));
  writes_done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_GT(total_reads.load(), 0u);
  EXPECT_EQ(server.snapshot()->corpus().size(), initial_size + kWrites);
  EXPECT_EQ(server.metrics().snapshot_swaps.load(),
            static_cast<std::uint64_t>(kWrites));
  server.Stop();
}

TEST(ServeConcurrencyTest, HeldSnapshotSurvivesManySwapsWhileReadersRun) {
  auto built = IntegrationSystem::Build(SmallCorpus());
  ASSERT_TRUE(built.ok()) << built.status();

  ServeOptions options;
  options.num_workers = 2;
  options.queue_timeout_ms = 0;
  PaygoServer server(std::move(*built), options);
  ASSERT_TRUE(server.Start().ok());

  // Pin the generation-0 snapshot, then swap repeatedly underneath it
  // while readers run: shared ownership must keep the pinned state fully
  // intact (same size, still coherent).
  const PaygoServer::Snapshot pinned = server.snapshot();
  const std::size_t pinned_size = pinned->corpus().size();

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto scores = server.Classify("title author year");
      EXPECT_TRUE(scores.ok()) << scores.status();
    }
  });

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.AddSchemaAsync(ExtraSchema(100 + i), {}).get().ok());
    EXPECT_EQ(pinned->corpus().size(), pinned_size);
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(CheckCoherent(pinned), pinned_size);
  EXPECT_EQ(server.snapshot()->corpus().size(), pinned_size + 6);
  server.Stop();
}

}  // namespace
}  // namespace paygo
