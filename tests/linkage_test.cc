#include "cluster/linkage.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

std::vector<DynamicBitset> MakeFeatures() {
  // Three 8-dimensional vectors:
  //   f0 = {0,1,2,3}, f1 = {2,3,4,5}, f2 = {6,7}.
  std::vector<DynamicBitset> f(3, DynamicBitset(8));
  for (std::size_t i : {0u, 1u, 2u, 3u}) f[0].Set(i);
  for (std::size_t i : {2u, 3u, 4u, 5u}) f[1].Set(i);
  for (std::size_t i : {6u, 7u}) f[2].Set(i);
  return f;
}

TEST(SimilarityMatrixTest, JaccardValues) {
  const SimilarityMatrix sims(MakeFeatures());
  EXPECT_EQ(sims.size(), 3u);
  // |{2,3}| / |{0..5}| = 2/6.
  EXPECT_NEAR(sims.At(0, 1), 2.0 / 6.0, 1e-6);
  EXPECT_NEAR(sims.At(0, 2), 0.0, 1e-6);
  EXPECT_NEAR(sims.At(1, 2), 0.0, 1e-6);
}

TEST(SimilarityMatrixTest, SymmetricWithUnitDiagonal) {
  const SimilarityMatrix sims(MakeFeatures());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(sims.At(i, i), 1.0, 1e-6);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(sims.At(i, j), sims.At(j, i), 1e-9);
    }
  }
}

TEST(SimilarityMatrixTest, EmptyVectorSelfSimilarityIsZero) {
  std::vector<DynamicBitset> f(2, DynamicBitset(4));
  f[0].Set(0);
  const SimilarityMatrix sims(f);
  EXPECT_NEAR(sims.At(1, 1), 0.0, 1e-9);
  EXPECT_NEAR(sims.At(0, 0), 1.0, 1e-9);
}

TEST(LinkageKindTest, NamesMatchThesisFigures) {
  EXPECT_EQ(LinkageKindName(LinkageKind::kAverage), "Avg. Jaccard");
  EXPECT_EQ(LinkageKindName(LinkageKind::kMin), "Min. Jaccard");
  EXPECT_EQ(LinkageKindName(LinkageKind::kMax), "Max. Jaccard");
  EXPECT_EQ(LinkageKindName(LinkageKind::kTotal), "Total Jaccard");
}

TEST(LinkageKindTest, AllKindsListed) {
  EXPECT_EQ(AllLinkageKinds().size(), 4u);
}

}  // namespace
}  // namespace paygo
