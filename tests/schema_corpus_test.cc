#include "schema/corpus.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

SchemaCorpus SmallCorpus() {
  SchemaCorpus corpus("test");
  corpus.Add(Schema("s1", {"title", "authors", "year of publish"}),
             {"bibliography"});
  corpus.Add(Schema("s2", {"make", "model", "year"}), {"cars"});
  corpus.Add(Schema("s3", {"Name", "Grade", "School", "District", "Project"}),
             {"schools", "people", "awards", "projects"});
  return corpus;
}

TEST(SchemaCorpusTest, AddAndAccess) {
  SchemaCorpus corpus = SmallCorpus();
  EXPECT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus.name(), "test");
  EXPECT_EQ(corpus.schema(0).source_name, "s1");
  EXPECT_EQ(corpus.schema(1).attributes.size(), 3u);
  EXPECT_EQ(corpus.labels(2).size(), 4u);
}

TEST(SchemaCorpusTest, LabelsDeduplicatedAndSorted) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s", {"a"}), {"zeta", "alpha", "zeta"});
  EXPECT_EQ(corpus.labels(0), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(SchemaCorpusTest, AllLabelsIsSortedUnion) {
  SchemaCorpus corpus = SmallCorpus();
  const auto labels = corpus.AllLabels();
  EXPECT_EQ(labels.size(), 6u);
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
  EXPECT_EQ(labels.front(), "awards");
}

TEST(SchemaCorpusTest, StatsMatchHandComputation) {
  SchemaCorpus corpus = SmallCorpus();
  Tokenizer tok;
  const CorpusStats stats = corpus.ComputeStats(tok);
  EXPECT_EQ(stats.num_schemas, 3u);
  // s1: {title, authors, year, publish} = 4 terms; s2: {make, model, year}
  // = 3; s3: {name, grade, school, district, project} = 5.
  EXPECT_EQ(stats.max_terms_per_schema, 5u);
  EXPECT_NEAR(stats.avg_terms_per_schema, (4.0 + 3.0 + 5.0) / 3.0, 1e-9);
  EXPECT_EQ(stats.num_labels, 6u);
  EXPECT_EQ(stats.max_labels_per_schema, 4u);
  EXPECT_NEAR(stats.avg_labels_per_schema, 6.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.max_schemas_per_label, 1u);
  EXPECT_NEAR(stats.avg_schemas_per_label, 1.0, 1e-9);
}

TEST(SchemaCorpusTest, StatsOnEmptyCorpus) {
  SchemaCorpus corpus;
  Tokenizer tok;
  const CorpusStats stats = corpus.ComputeStats(tok);
  EXPECT_EQ(stats.num_schemas, 0u);
  EXPECT_EQ(stats.num_labels, 0u);
}

TEST(SchemaCorpusTest, UnionConcatenatesWithLabels) {
  SchemaCorpus a("A"), b("B");
  a.Add(Schema("s1", {"x"}), {"la"});
  b.Add(Schema("s2", {"y"}), {"lb"});
  const SchemaCorpus u = SchemaCorpus::Union(a, b, "A+B");
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.name(), "A+B");
  EXPECT_EQ(u.schema(0).source_name, "s1");
  EXPECT_EQ(u.schema(1).source_name, "s2");
  EXPECT_EQ(u.labels(1), (std::vector<std::string>{"lb"}));
}

}  // namespace
}  // namespace paygo
