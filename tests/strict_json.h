#ifndef PAYGO_TESTS_STRICT_JSON_H_
#define PAYGO_TESTS_STRICT_JSON_H_

/// Strict recursive-descent JSON validator for tests.
///
/// Accepts exactly the RFC 8259 grammar: one top-level value, objects with
/// string keys, no trailing commas, no bare NaN/Infinity, numbers in the
/// canonical JSON form. Exists so machine-readable dumps (ServerMetrics,
/// StatsRegistry, trace export) fail tier-1 the moment they emit a malformed
/// key or a trailing comma, instead of failing downstream in Perfetto or jq.

#include <cctype>
#include <cstddef>
#include <string>

namespace paygo {
namespace strict_json {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Returns true iff `text` is exactly one valid JSON value (plus optional
  /// surrounding whitespace). On failure, `error()` describes the first
  /// offending byte offset.
  bool Validate() {
    pos_ = 0;
    error_.clear();
    if (depth_ != 0) depth_ = 0;
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing content after top-level value");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue() {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    bool ok = ParseValueInner();
    --depth_;
    return ok;
  }

  bool ParseValueInner() {
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (AtEnd() || text_[pos_] != *p) return Fail("bad literal");
      ++pos_;
    }
    return true;
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (AtEnd() || Peek() != '"') return Fail("object key must be a string");
      if (!ParseString()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;  // the loop head rejects a '}' after ',' (trailing comma)
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        if (!AtEnd() && Peek() == ']') return Fail("trailing comma in array");
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (!AtEnd()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Fail("dangling escape");
        const char e = text_[pos_];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++pos_;
          continue;
        }
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
          continue;
        }
        return Fail("invalid escape character");
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    const std::size_t begin = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;  // leading zero may not be followed by more digits
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("leading zero in number");
      }
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit required after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit required in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return pos_ > begin;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

/// Convenience wrapper: true iff `text` is strictly valid JSON.
inline bool IsValid(const std::string& text) { return Parser(text).Validate(); }

/// Returns the parse error for invalid input, or "" when valid.
inline std::string ErrorOf(const std::string& text) {
  Parser p(text);
  return p.Validate() ? std::string() : p.error();
}

}  // namespace strict_json
}  // namespace paygo

#endif  // PAYGO_TESTS_STRICT_JSON_H_
