#include "cluster/dendrogram.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace paygo {
namespace {

/// Two tight pairs plus an outlier (similarities engineered for clear merge
/// levels).
std::vector<DynamicBitset> Features() {
  std::vector<DynamicBitset> f(5, DynamicBitset(16));
  for (std::size_t b : {0u, 1u, 2u, 3u}) f[0].Set(b);
  for (std::size_t b : {0u, 1u, 2u, 4u}) f[1].Set(b);
  for (std::size_t b : {8u, 9u, 10u, 11u}) f[2].Set(b);
  for (std::size_t b : {8u, 9u, 10u, 12u}) f[3].Set(b);
  f[4].Set(15);
  return f;
}

TEST(DendrogramTest, ReplaysMergeHistory) {
  const auto features = Features();
  HacOptions opts;
  opts.tau_c_sim = 0.3;
  const auto result = Hac::Run(features, opts);
  ASSERT_TRUE(result.ok());
  const auto dendro = Dendrogram::Build(features.size(), *result);
  ASSERT_TRUE(dendro.ok()) << dendro.status();
  // 5 leaves + 2 merges = 7 nodes; 3 roots ({0,1}, {2,3}, {4}).
  EXPECT_EQ(dendro->nodes().size(), 7u);
  EXPECT_EQ(dendro->roots().size(), 3u);
}

TEST(DendrogramTest, CutAtClusteringTauReproducesClusters) {
  const auto features = Features();
  for (double tau : {0.2, 0.4, 0.6}) {
    HacOptions opts;
    opts.tau_c_sim = tau;
    const auto result = Hac::Run(features, opts);
    ASSERT_TRUE(result.ok());
    const auto dendro = Dendrogram::Build(features.size(), *result);
    ASSERT_TRUE(dendro.ok());
    auto cut = dendro->CutAt(tau);
    auto expected = result->clusters;
    std::sort(cut.begin(), cut.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(cut, expected) << "tau=" << tau;
  }
}

TEST(DendrogramTest, HigherCutRefinesWithoutRerunning) {
  const auto features = Features();
  HacOptions opts;
  opts.tau_c_sim = 0.0;  // full tree
  const auto result = Hac::Run(features, opts);
  ASSERT_TRUE(result.ok());
  const auto dendro = Dendrogram::Build(features.size(), *result);
  ASSERT_TRUE(dendro.ok());
  // Cutting the full tree at 0.3 must match running HAC at 0.3.
  HacOptions at3;
  at3.tau_c_sim = 0.3;
  const auto direct = Hac::Run(features, at3);
  ASSERT_TRUE(direct.ok());
  auto cut = dendro->CutAt(0.3);
  auto expected = direct->clusters;
  std::sort(cut.begin(), cut.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cut, expected);
  // Cutting above every similarity yields all singletons.
  EXPECT_EQ(dendro->CutAt(1.01).size(), features.size());
}

TEST(DendrogramTest, NodeSizesAndLeafCollection) {
  const auto features = Features();
  HacOptions opts;
  opts.tau_c_sim = 0.0;
  const auto result = Hac::Run(features, opts);
  const auto dendro = Dendrogram::Build(features.size(), *result);
  ASSERT_TRUE(dendro.ok());
  ASSERT_EQ(dendro->roots().size(), 1u);
  const DendrogramNode& root =
      dendro->nodes()[static_cast<std::size_t>(dendro->roots()[0])];
  EXPECT_EQ(root.size, features.size());
}

TEST(DendrogramTest, NewickIsWellFormed) {
  const auto features = Features();
  SchemaCorpus corpus;
  for (int i = 0; i < 5; ++i) {
    corpus.Add(Schema("src (" + std::to_string(i) + ")", {"a"}));
  }
  HacOptions opts;
  opts.tau_c_sim = 0.3;
  const auto result = Hac::Run(features, opts);
  const auto dendro = Dendrogram::Build(features.size(), *result);
  ASSERT_TRUE(dendro.ok());
  const std::string newick = dendro->ToNewick(&corpus);
  // One line per root, each ';'-terminated, parentheses balanced, and no
  // raw structural characters leaked from the source names.
  EXPECT_EQ(std::count(newick.begin(), newick.end(), ';'), 3);
  EXPECT_EQ(std::count(newick.begin(), newick.end(), '('),
            std::count(newick.begin(), newick.end(), ')'));
  EXPECT_NE(newick.find("src__0_"), std::string::npos);
}

TEST(DendrogramTest, AsciiRenderingMentionsSimilarities) {
  const auto features = Features();
  HacOptions opts;
  opts.tau_c_sim = 0.3;
  const auto result = Hac::Run(features, opts);
  const auto dendro = Dendrogram::Build(features.size(), *result);
  ASSERT_TRUE(dendro.ok());
  const std::string ascii = dendro->ToAscii();
  EXPECT_NE(ascii.find("sim="), std::string::npos);
  EXPECT_NE(ascii.find("s4"), std::string::npos);
}

TEST(DendrogramTest, RejectsCorruptMergeHistory) {
  HacResult bogus;
  bogus.clusters = {{0}, {1}};
  bogus.merges = {{7, 9, 0.5}};
  EXPECT_TRUE(Dendrogram::Build(2, bogus).status().IsInvalidArgument());
}

}  // namespace
}  // namespace paygo
