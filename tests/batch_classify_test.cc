/// \file batch_classify_test.cc
/// \brief Batch-vs-single classification equivalence, checked bitwise.
///
/// ClassifyBatch ranks B queries in one domain-major struct-of-arrays
/// sweep, but per (query, domain) it sums the same log-odds in the same
/// ascending feature order onto the same base as Classify — so every
/// comparison here is EXPECT_EQ on doubles, never EXPECT_NEAR. Covered:
/// batch sizes {1, 7, 64}, concurrent callers at thread widths {1, 4},
/// the scratch/Into flavors, a delta-churned classifier (the
/// delta_differential_test harness), and the PaygoServer coalesced
/// SubmitBatch path against the plain single-query server path.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "classify/naive_bayes.h"
#include "core/integration_system.h"
#include "serve/paygo_server.h"
#include "synth/ddh_generator.h"
#include "util/bitset.h"
#include "util/random.h"

namespace paygo {
namespace {

constexpr std::size_t kDim = 400;

/// A synthetic classifier with dense random conditionals, the same shape
/// the perf bench uses.
NaiveBayesClassifier MakeClassifier(std::size_t num_domains, unsigned seed) {
  Rng rng(seed);
  std::vector<DomainConditionals> conds(num_domains);
  for (auto& c : conds) {
    c.prior = 0.01 + rng.NextDouble();
    c.q1.resize(kDim);
    for (double& q : c.q1) q = 0.001 + 0.9 * rng.NextDouble();
  }
  return NaiveBayesClassifier::FromConditionals(
      std::move(conds), std::vector<bool>(num_domains, false), {});
}

std::vector<DynamicBitset> MakeQueries(std::size_t count, unsigned seed) {
  Rng rng(seed);
  std::vector<DynamicBitset> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DynamicBitset q(kDim);
    // Mixed sparsity, including the empty query (base scores only).
    const std::size_t set = i % 9;
    for (std::size_t k = 0; k < set; ++k) q.Set(rng.NextBelow(kDim));
    queries.push_back(std::move(q));
  }
  return queries;
}

void ExpectSameRanking(const std::vector<DomainScore>& batch,
                       const std::vector<DomainScore>& single,
                       std::size_t query_index) {
  ASSERT_EQ(batch.size(), single.size()) << "query " << query_index;
  for (std::size_t k = 0; k < batch.size(); ++k) {
    EXPECT_EQ(batch[k].domain, single[k].domain)
        << "query " << query_index << " rank " << k;
    EXPECT_EQ(batch[k].log_posterior, single[k].log_posterior)
        << "query " << query_index << " rank " << k;
  }
}

TEST(BatchClassifyTest, BatchMatchesSingleBitwise) {
  const NaiveBayesClassifier clf = MakeClassifier(37, 101);
  for (std::size_t batch_size : {1u, 7u, 64u}) {
    const std::vector<DynamicBitset> queries = MakeQueries(batch_size, 202);
    const auto batched = clf.ClassifyBatch(queries);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t b = 0; b < queries.size(); ++b) {
      ExpectSameRanking(batched[b], clf.Classify(queries[b]), b);
    }
  }
}

TEST(BatchClassifyTest, IntoFlavorsMatchAndReuseBuffers) {
  const NaiveBayesClassifier clf = MakeClassifier(20, 303);
  const std::vector<DynamicBitset> queries = MakeQueries(64, 404);

  ClassifyScratch scratch;
  std::vector<DomainScore> single_out;
  std::vector<std::vector<DomainScore>> batch_out;

  // Several rounds through the SAME buffers: results must not depend on
  // leftover state from the previous round.
  for (int round = 0; round < 3; ++round) {
    clf.ClassifyBatchInto(queries, &scratch, &batch_out);
    ASSERT_EQ(batch_out.size(), queries.size());
    for (std::size_t b = 0; b < queries.size(); ++b) {
      clf.ClassifyInto(queries[b], &scratch, &single_out);
      ExpectSameRanking(batch_out[b], single_out, b);
      ExpectSameRanking(batch_out[b], clf.Classify(queries[b]), b);
    }
  }
}

TEST(BatchClassifyTest, SkipSingletonDomainsHonoredInBatch) {
  Rng rng(55);
  std::vector<DomainConditionals> conds(8);
  for (auto& c : conds) {
    c.prior = 0.01 + rng.NextDouble();
    c.q1.resize(kDim);
    for (double& q : c.q1) q = 0.001 + 0.9 * rng.NextDouble();
  }
  std::vector<bool> singleton(8, false);
  singleton[2] = singleton[5] = true;
  ClassifierOptions options;
  options.skip_singleton_domains = true;
  const auto clf = NaiveBayesClassifier::FromConditionals(
      std::move(conds), std::move(singleton), options);

  const std::vector<DynamicBitset> queries = MakeQueries(7, 66);
  const auto batched = clf.ClassifyBatch(queries);
  for (std::size_t b = 0; b < queries.size(); ++b) {
    ASSERT_EQ(batched[b].size(), 6u);
    for (const DomainScore& s : batched[b]) {
      EXPECT_NE(s.domain, 2u);
      EXPECT_NE(s.domain, 5u);
    }
    ExpectSameRanking(batched[b], clf.Classify(queries[b]), b);
  }
}

TEST(BatchClassifyTest, ConcurrentBatchCallersMatchSingle) {
  const NaiveBayesClassifier clf = MakeClassifier(25, 505);
  const std::vector<DynamicBitset> queries = MakeQueries(64, 606);

  // Golden single-path answers, computed up front on the main thread.
  std::vector<std::vector<DomainScore>> golden;
  golden.reserve(queries.size());
  for (const DynamicBitset& q : queries) golden.push_back(clf.Classify(q));

  for (std::size_t width : {1u, 4u}) {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < width; ++t) {
      threads.emplace_back([&clf, &queries, &golden, t] {
        // Each thread slices the queries differently so the thread_local
        // scratch sees varying batch sizes.
        const std::size_t chunk = t + 3;
        for (std::size_t start = 0; start < queries.size(); start += chunk) {
          const std::size_t len = std::min(chunk, queries.size() - start);
          const auto batched = clf.ClassifyBatch(
              std::span<const DynamicBitset>(queries.data() + start, len));
          ASSERT_EQ(batched.size(), len);
          for (std::size_t b = 0; b < len; ++b) {
            ExpectSameRanking(batched[b], golden[start + b], start + b);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
}

/// The delta-churned classifier: stream schemas through the O(delta) write
/// path (the delta_differential_test harness), then require batch == single
/// on the UPDATED classifier — proving the batch sweep is exact over
/// UpdateDomains-produced models too, not just fresh Build() ones.
TEST(BatchClassifyTest, DeltaChurnedClassifierMatchesBitwise) {
  constexpr std::size_t kBase = 60;
  constexpr std::size_t kExtra = 10;
  const SchemaCorpus pool =
      MakeDdhCorpus({.num_schemas = kBase + kExtra, .seed = 29});
  SchemaCorpus corpus("ddh-base");
  for (std::size_t i = 0; i < kBase; ++i) {
    corpus.Add(pool.schema(i), pool.labels(i));
  }
  auto built = IntegrationSystem::Build(corpus);
  ASSERT_TRUE(built.ok()) << built.status();
  auto sys = (*built)->Clone();
  sys->set_delta_mutations(true);
  for (std::size_t i = kBase; i < pool.size(); ++i) {
    auto added = sys->AddSchema(pool.schema(i), pool.labels(i));
    ASSERT_TRUE(added.ok()) << added.status();
  }

  // Queries over the pool's own attribute vocabulary.
  std::vector<std::string> queries;
  for (std::size_t i = 0; i < pool.size(); i += 3) {
    std::string q;
    for (const std::string& attr : pool.schema(i).attributes) {
      if (!q.empty()) q += ' ';
      q += attr;
    }
    queries.push_back(std::move(q));
  }

  auto batched = sys->ClassifyKeywordQueryBatch(queries);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ASSERT_EQ(batched->size(), queries.size());
  for (std::size_t b = 0; b < queries.size(); ++b) {
    auto single = sys->ClassifyKeywordQuery(queries[b]);
    ASSERT_TRUE(single.ok()) << single.status();
    ExpectSameRanking((*batched)[b], *single, b);
  }
}

/// The server-level coalesced path: SubmitBatch with classify_batch_max>1
/// must answer every query exactly as the direct single-query system call,
/// cache hits and sweeps alike.
TEST(BatchClassifyTest, ServerSubmitBatchMatchesDirectClassify) {
  const SchemaCorpus corpus = MakeDdhCorpus({.num_schemas = 40, .seed = 7});
  auto built = IntegrationSystem::Build(corpus);
  ASSERT_TRUE(built.ok()) << built.status();

  // Golden answers straight off the system, before the server owns it.
  std::vector<std::string> queries;
  for (std::size_t i = 0; i < corpus.size(); i += 2) {
    std::string q;
    for (const std::string& attr : corpus.schema(i).attributes) {
      if (!q.empty()) q += ' ';
      q += attr;
    }
    queries.push_back(std::move(q));
  }
  // Duplicates exercise the cache interplay inside one sweep.
  queries.push_back(queries[0]);
  queries.push_back(queries[1]);
  std::vector<std::vector<DomainScore>> golden;
  for (const std::string& q : queries) {
    auto scores = (*built)->ClassifyKeywordQuery(q);
    ASSERT_TRUE(scores.ok()) << scores.status();
    golden.push_back(std::move(*scores));
  }

  ServeOptions options;
  options.num_workers = 2;
  options.classify_batch_max = 8;
  PaygoServer server(std::move(*built), options);
  ASSERT_TRUE(server.Start().ok());

  for (int round = 0; round < 3; ++round) {
    auto results = server.ClassifyBatch(queries);
    ASSERT_EQ(results.size(), queries.size());
    for (std::size_t b = 0; b < queries.size(); ++b) {
      ASSERT_TRUE(results[b].ok()) << results[b].status();
      ExpectSameRanking(*results[b], golden[b], b);
    }
  }
  // Every answer flowed through the classify path; at least one sweep ran
  // (even a width-1 drain counts as a sweep).
  EXPECT_GT(server.metrics().batch_sweeps.load(), 0u);
  EXPECT_GE(server.metrics().batched_requests.load(),
            server.metrics().batch_sweeps.load());
  server.Stop();
}

}  // namespace
}  // namespace paygo
