#include "schema/corpus_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace paygo {
namespace {

TEST(CorpusIoTest, ParseBasic) {
  const std::string text =
      "# a comment\n"
      "corpus demo\n"
      "schema expedia :: tourism :: departure airport ; destination airport\n"
      "schema sheet1 :: schools, people :: Name ; Grade ; School\n"
      "\n";
  const auto result = ParseCorpus(text);
  ASSERT_TRUE(result.ok()) << result.status();
  const SchemaCorpus& c = *result;
  EXPECT_EQ(c.name(), "demo");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.schema(0).source_name, "expedia");
  EXPECT_EQ(c.schema(0).attributes,
            (std::vector<std::string>{"departure airport",
                                      "destination airport"}));
  EXPECT_EQ(c.labels(1), (std::vector<std::string>{"people", "schools"}));
}

TEST(CorpusIoTest, ParseEmptyLabels) {
  const auto result = ParseCorpus("schema s ::  :: a ; b\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->labels(0).empty());
}

TEST(CorpusIoTest, ParseRejectsMalformedLine) {
  EXPECT_TRUE(ParseCorpus("garbage line\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseCorpus("schema missing fields\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ParseCorpus("schema s :: l :: \n").status().IsInvalidArgument());
}

TEST(CorpusIoTest, InlineCommentsStripped) {
  const auto result =
      ParseCorpus("schema s :: l :: a ; b # trailing comment\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema(0).attributes,
            (std::vector<std::string>{"a", "b"}));
}

TEST(CorpusIoTest, RoundTrip) {
  SchemaCorpus corpus("roundtrip");
  corpus.Add(Schema("s1", {"title", "authors"}), {"bibliography"});
  corpus.Add(Schema("s2", {"make", "model", "year"}), {"cars", "items"});
  const std::string text = SerializeCorpus(corpus);
  const auto result = ParseCorpus(text);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->name(), "roundtrip");
  ASSERT_EQ(result->size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(result->schema(i).source_name, corpus.schema(i).source_name);
    EXPECT_EQ(result->schema(i).attributes, corpus.schema(i).attributes);
    EXPECT_EQ(result->labels(i), corpus.labels(i));
  }
}

TEST(CorpusIoTest, FileRoundTrip) {
  SchemaCorpus corpus("filetest");
  corpus.Add(Schema("s1", {"x", "y"}), {"l"});
  const std::string path = ::testing::TempDir() + "/paygo_corpus_test.txt";
  ASSERT_TRUE(SaveCorpusFile(corpus, path).ok());
  const auto loaded = LoadCorpusFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->schema(0).attributes,
            (std::vector<std::string>{"x", "y"}));
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadCorpusFile("/nonexistent/path/corpus.txt")
                  .status()
                  .IsIoError());
}

}  // namespace
}  // namespace paygo
