#include <gtest/gtest.h>

#include <cmath>

#include "core/integration_system.h"
#include "synth/ddh_generator.h"

namespace paygo {
namespace {

/// Adversarial and boundary corpora through the full pipeline.

TEST(SystemEdgesTest, StopwordOnlyCorpusRejected) {
  SchemaCorpus corpus;
  corpus.Add(Schema("junk", {"the", "of", "and"}));
  const auto sys = IntegrationSystem::Build(corpus, {});
  ASSERT_FALSE(sys.ok());
  EXPECT_TRUE(sys.status().IsInvalidArgument());
}

TEST(SystemEdgesTest, SingleSchemaCorpusWorks) {
  SchemaCorpus corpus;
  corpus.Add(Schema("solo", {"title", "authors"}));
  const auto sys = IntegrationSystem::Build(corpus, {});
  ASSERT_TRUE(sys.ok()) << sys.status();
  EXPECT_EQ((*sys)->domains().num_domains(), 1u);
  EXPECT_TRUE((*sys)->domains().IsSingletonDomain(0));
  const auto ranking = (*sys)->ClassifyKeywordQuery("title");
  ASSERT_TRUE(ranking.ok());
  EXPECT_EQ(ranking->size(), 1u);
}

TEST(SystemEdgesTest, DuplicateSchemasShareADomain) {
  SchemaCorpus corpus;
  for (int i = 0; i < 3; ++i) {
    corpus.Add(Schema("copy" + std::to_string(i),
                      {"make", "model", "year"}));
  }
  const auto sys = IntegrationSystem::Build(corpus, {});
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ((*sys)->domains().num_domains(), 1u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ((*sys)->domains().Membership(i, 0), 1.0);
  }
}

TEST(SystemEdgesTest, QueryWithOnlyUnknownTermsStillRanks) {
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"make", "model"}));
  corpus.Add(Schema("b", {"title", "authors"}));
  const auto sys = IntegrationSystem::Build(corpus, {});
  ASSERT_TRUE(sys.ok());
  // No query term matches the lexicon -> empty feature vector -> ranking
  // by priors and absent-feature likelihoods; must not crash or return
  // garbage scores.
  const auto ranking = (*sys)->ClassifyKeywordQuery("zzz qqq www");
  ASSERT_TRUE(ranking.ok());
  ASSERT_EQ(ranking->size(), 2u);
  for (const DomainScore& s : *ranking) {
    EXPECT_TRUE(std::isfinite(s.log_posterior));
  }
}

TEST(SystemEdgesTest, EmptyKeywordQueryRanksByPrior) {
  SchemaCorpus corpus;
  corpus.Add(Schema("a", {"make", "model"}));
  corpus.Add(Schema("b", {"make", "mileage"}));
  corpus.Add(Schema("c", {"title", "authors"}));
  SystemOptions opts;
  opts.hac.tau_c_sim = 0.2;
  const auto sys = IntegrationSystem::Build(corpus, opts);
  ASSERT_TRUE(sys.ok());
  const auto ranking = (*sys)->ClassifyKeywordQuery("");
  ASSERT_TRUE(ranking.ok());
  ASSERT_FALSE(ranking->empty());
  // The larger (cars) domain has the higher prior.
  const std::uint32_t cars = (*sys)->domains().DomainsOf(0)[0].first;
  EXPECT_EQ((*ranking)[0].domain, cars);
}

TEST(SystemEdgesTest, SuggestDomainsTruncatesToK) {
  DdhGeneratorOptions gen;
  gen.num_schemas = 60;
  const auto sys = IntegrationSystem::Build(MakeDdhCorpus(gen), {});
  ASSERT_TRUE(sys.ok());
  const auto s1 = (*sys)->SuggestDomains("make model", 1);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->size(), 1u);
  const auto s100 = (*sys)->SuggestDomains("make model", 100);
  ASSERT_TRUE(s100.ok());
  EXPECT_EQ(s100->size(), (*sys)->domains().num_domains());
}

TEST(SystemEdgesTest, WideSchemaAndTinySchemaCoexist) {
  SchemaCorpus corpus;
  std::vector<std::string> wide;
  for (int i = 0; i < 60; ++i) wide.push_back("column" + std::to_string(i));
  corpus.Add(Schema("wide", wide));
  corpus.Add(Schema("tiny", {"price"}));
  const auto sys = IntegrationSystem::Build(corpus, {});
  ASSERT_TRUE(sys.ok()) << sys.status();
  EXPECT_EQ(sys.value()->domains().num_domains(), 2u);
}

TEST(SystemEdgesTest, UnicodeAndPunctuationAttributesSurvive) {
  SchemaCorpus corpus;
  corpus.Add(Schema("messy", {"  price ($US)  ", "d\xC3\xA9part", "-->title<--"}));
  corpus.Add(Schema("clean", {"price", "title"}));
  const auto sys = IntegrationSystem::Build(corpus, {});
  ASSERT_TRUE(sys.ok()) << sys.status();
  // The shared terms still cluster the two schemas together at low tau.
  SystemOptions loose;
  loose.hac.tau_c_sim = 0.2;
  loose.assignment.tau_c_sim = 0.2;
  const auto sys2 = IntegrationSystem::Build(corpus, loose);
  ASSERT_TRUE(sys2.ok());
  EXPECT_EQ((*sys2)->domains().DomainsOf(0)[0].first,
            (*sys2)->domains().DomainsOf(1)[0].first);
}

TEST(SystemEdgesTest, FullDdhPipelineEndToEnd) {
  // The thesis's largest configuration, end to end with classifier and
  // mediation — a smoke test that the whole system holds together at
  // scale (a few hundred ms in RelWithDebInfo).
  DdhGeneratorOptions gen;
  gen.num_schemas = 600;
  SystemOptions opts;
  opts.hac.tau_c_sim = 0.25;
  opts.assignment.tau_c_sim = 0.25;
  const auto sys = IntegrationSystem::Build(MakeDdhCorpus(gen), opts);
  ASSERT_TRUE(sys.ok()) << sys.status();
  const IntegrationSystem& s = **sys;
  EXPECT_TRUE(s.has_classifier());
  EXPECT_TRUE(s.has_mediation());
  const auto r = s.ClassifyKeywordQuery("make model mileage");
  ASSERT_TRUE(r.ok());
  // The top domain must be a cars-dominated one.
  const auto& members = s.domains().SchemasOf((*r)[0].domain);
  ASSERT_FALSE(members.empty());
  EXPECT_EQ(s.corpus().labels(members[0].first)[0], "cars");
}

}  // namespace
}  // namespace paygo
