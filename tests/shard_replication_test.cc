// End-to-end replication tests run against real sockets in-process: a
// primary PaygoServer fronted by a ShardService, and replica servers
// pulling through ReplicaSync. Covers full-snapshot bootstrap, delta
// replay of wire AddSchema writes, the forced full re-sync after an
// unlogged mutation, staleness gauge export, a writer racing the replica
// sync loop (the TSan target), and the router staying up when a fleet
// member is killed.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/integration_system.h"
#include "gtest/gtest.h"
#include "obs/stats.h"
#include "serve/paygo_server.h"
#include "shard/hash_ring.h"
#include "shard/replication.h"
#include "shard/router.h"
#include "shard/shard_service.h"
#include "synth/web_generator.h"

namespace paygo {
namespace {

SystemOptions TestOptions() {
  SystemOptions options;
  options.hac.tau_c_sim = 0.25;
  options.assignment.tau_c_sim = 0.25;
  return options;
}

Schema MakeLiveSchema(int i) {
  Schema schema;
  schema.source_name = "live-source-" + std::to_string(i);
  schema.attributes = {"departure city", "destination city", "travel date",
                       "fare class", "seat " + std::to_string(i)};
  return schema;
}

/// A primary serving the DW corpus plus an empty replica wired to it.
struct Fixture {
  Fixture() {
    auto system = IntegrationSystem::Build(MakeDwCorpus(), TestOptions());
    EXPECT_TRUE(system.ok()) << system.status();
    primary = std::make_unique<PaygoServer>(std::move(*system));
    EXPECT_TRUE(primary->Start().ok());
    service = std::make_unique<ShardService>(*primary);
    Result<std::uint16_t> port = service->Start();
    EXPECT_TRUE(port.ok()) << port.status();

    replica = std::make_unique<PaygoServer>(ServeOptions{});
    EXPECT_TRUE(replica->Start().ok());
    ReplicaSyncOptions sync_options;
    sync_options.primary_port = *port;
    sync_options.poll_interval_ms = 10;
    sync_options.system = TestOptions();
    sync = std::make_unique<ReplicaSync>(*replica, sync_options);
  }

  ~Fixture() {
    sync->Stop();
    if (replica != nullptr) replica->Stop();
    if (service != nullptr) service->Stop();
    if (primary != nullptr) primary->Stop();
  }

  ShardAddress primary_address() const {
    return ShardAddress{"127.0.0.1", service->port()};
  }

  std::unique_ptr<PaygoServer> primary;
  std::unique_ptr<ShardService> service;
  std::unique_ptr<PaygoServer> replica;
  std::unique_ptr<ReplicaSync> sync;
};

void ExpectSameRanking(PaygoServer& a, PaygoServer& b,
                       const std::string& query) {
  Result<std::vector<DomainScore>> ra = a.Classify(query);
  Result<std::vector<DomainScore>> rb = b.Classify(query);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  ASSERT_EQ(ra->size(), rb->size());
  for (std::size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i].domain, (*rb)[i].domain) << "rank " << i;
    EXPECT_DOUBLE_EQ((*ra)[i].log_posterior, (*rb)[i].log_posterior);
  }
}

TEST(ShardReplicationTest, FullSnapshotBootstrapsAnEmptyReplica) {
  Fixture f;
  // Before the first pull the replica has nothing to serve.
  EXPECT_FALSE(f.replica->Classify("departure city").ok());

  ASSERT_TRUE(f.sync->PollOnce().ok());
  const ReplicaSync::Stats stats = f.sync->GetStats();
  EXPECT_EQ(stats.full_syncs, 1u);
  EXPECT_EQ(stats.delta_syncs, 0u);
  EXPECT_EQ(stats.synced_generation, f.primary->generation());
  EXPECT_EQ(stats.generation_lag, 0u);
  EXPECT_TRUE(stats.connected);

  ExpectSameRanking(*f.primary, *f.replica, "departure city arrival");
}

TEST(ShardReplicationTest, WireWritesReplicateAsDeltas) {
  Fixture f;
  ASSERT_TRUE(f.sync->PollOnce().ok());

  // Writes through the wire protocol land in the primary's delta log...
  const ShardRouter router({f.primary_address()});
  for (int i = 0; i < 3; ++i) {
    Result<std::uint64_t> generation =
        router.AddSchema(MakeLiveSchema(i), {"dw-flights"});
    ASSERT_TRUE(generation.ok()) << generation.status();
  }
  ASSERT_EQ(f.service->log().size(), 3u);

  // ...so the next pull replays them instead of re-shipping the snapshot.
  ASSERT_TRUE(f.sync->PollOnce().ok());
  const ReplicaSync::Stats stats = f.sync->GetStats();
  EXPECT_EQ(stats.full_syncs, 1u);
  EXPECT_EQ(stats.delta_syncs, 1u);
  // The PRIMARY generation is the replication clock; the replica's local
  // counter runs offset by its bootstrap install and later full syncs.
  EXPECT_EQ(stats.synced_generation, f.primary->generation());
  EXPECT_EQ(stats.generation_lag, 0u);

  ExpectSameRanking(*f.primary, *f.replica, "fare class seat");
}

TEST(ShardReplicationTest, UnloggedMutationForcesFullResync) {
  Fixture f;
  ASSERT_TRUE(f.sync->PollOnce().ok());

  // A mutation applied directly to the server bypasses the ShardService
  // write path, so the delta log cannot cover the generation gap and the
  // replica must be given the whole snapshot again.
  ASSERT_TRUE(
      f.primary->AddSchemaAsync(MakeLiveSchema(9), {"dw-flights"}).get().ok());
  ASSERT_TRUE(f.sync->PollOnce().ok());
  const ReplicaSync::Stats stats = f.sync->GetStats();
  EXPECT_EQ(stats.full_syncs, 2u);
  EXPECT_EQ(stats.delta_syncs, 0u);
  EXPECT_EQ(stats.synced_generation, f.primary->generation());

  ExpectSameRanking(*f.primary, *f.replica, "travel date");
}

TEST(ShardReplicationTest, StalenessGaugesAreExported) {
  Fixture f;
  ASSERT_TRUE(f.sync->PollOnce().ok());

  StatsRegistry& registry = StatsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("paygo.shard.replica.generation_lag")->value(),
            0);
  EXPECT_GE(registry.GetGauge("paygo.shard.replica.staleness_ms")->value(), 0);

  const std::string json = f.sync->StatsJson();
  EXPECT_NE(json.find("\"generation_lag\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"connected\": true"), std::string::npos);
}

TEST(ShardReplicationTest, SyncLoopRacesWriterAndReaders) {
  Fixture f;
  ASSERT_TRUE(f.sync->Start().ok());

  // Readers hammer the replica while wire writes mutate the primary and
  // the background loop pulls — the memory-ordering gauntlet TSan checks.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        // Errors are fine before the first install; crashes are not.
        (void)f.replica->Classify("departure city arrival");
      }
    });
  }
  const ShardRouter router({f.primary_address()});
  for (int i = 0; i < 4; ++i) {
    Result<std::uint64_t> generation =
        router.AddSchema(MakeLiveSchema(i), {"dw-flights"});
    ASSERT_TRUE(generation.ok()) << generation.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // The loop must converge on the primary's final generation.
  const std::uint64_t target = f.primary->generation();
  bool converged = false;
  for (int i = 0; i < 500; ++i) {
    if (f.sync->GetStats().synced_generation == target) {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(converged);
  ExpectSameRanking(*f.primary, *f.replica, "fare class seat");
}

TEST(ShardReplicationTest, RouterKeepsServingWhenAFleetMemberDies) {
  // Two primaries, each serving its consistent-hash share of the corpus.
  const SchemaCorpus corpus = MakeDwSsCorpus();
  const HashRing ring(2);
  std::vector<SchemaCorpus> parts = PartitionCorpus(corpus, ring);
  std::vector<std::unique_ptr<PaygoServer>> servers;
  std::vector<std::unique_ptr<ShardService>> services;
  std::vector<ShardAddress> addresses;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    ASSERT_GT(parts[s].size(), 0u) << "shard " << s << " got no schemas";
    auto system = IntegrationSystem::Build(std::move(parts[s]), TestOptions());
    ASSERT_TRUE(system.ok()) << system.status();
    servers.push_back(std::make_unique<PaygoServer>(std::move(*system)));
    ASSERT_TRUE(servers.back()->Start().ok());
    services.push_back(std::make_unique<ShardService>(*servers.back()));
    Result<std::uint16_t> port = services.back()->Start();
    ASSERT_TRUE(port.ok()) << port.status();
    addresses.push_back(ShardAddress{"127.0.0.1", *port});
  }

  RouterOptions options;
  options.request_timeout_ms = 1000;
  const ShardRouter router(addresses, options);
  Result<ScatterResult> healthy = router.Classify("price listing", 5);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(healthy->shards_ok, 2u);
  EXPECT_FALSE(healthy->ranked.empty());

  // Kill shard 1. The router must keep serving off the survivor.
  services[1]->Stop();
  servers[1]->Stop();
  Result<ScatterResult> degraded = router.Classify("price listing", 5);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->shards_ok, 1u);
  EXPECT_EQ(degraded->shards_total, 2u);
  EXPECT_FALSE(degraded->ranked.empty());
  for (const RoutedDomain& d : degraded->ranked) EXPECT_EQ(d.shard, 0u);

  services[0]->Stop();
  servers[0]->Stop();
}

}  // namespace
}  // namespace paygo
