#include "text/lcs.h"

#include <gtest/gtest.h>

#include <string>

#include "util/random.h"

namespace paygo {
namespace {

TEST(LcsDpTest, BasicCases) {
  EXPECT_EQ(LcsLengthDp("hello", "hello"), 5u);
  EXPECT_EQ(LcsLengthDp("abcdef", "zabcy"), 3u);  // "abc"
  EXPECT_EQ(LcsLengthDp("abc", "xyz"), 0u);
  EXPECT_EQ(LcsLengthDp("", "abc"), 0u);
  EXPECT_EQ(LcsLengthDp("abc", ""), 0u);
}

TEST(LcsDpTest, SubstringNotSubsequence) {
  // Common subsequence "abc" exists but longest common SUBSTRING is 1.
  EXPECT_EQ(LcsLengthDp("axbxc", "abc"), 1u);
}

TEST(LcsDpTest, SchemaTermExamples) {
  // departure vs departures: "departure" (9 chars) is a substring.
  EXPECT_EQ(LcsLengthDp("departure", "departures"), 9u);
  // departure vs departing share "depart".
  EXPECT_EQ(LcsLengthDp("departure", "departing"), 6u);
}

TEST(LcsDpTest, Symmetric) {
  EXPECT_EQ(LcsLengthDp("professor", "professional"),
            LcsLengthDp("professional", "professor"));
}

TEST(SuffixAutomatonTest, MatchesDpOnBasicCases) {
  EXPECT_EQ(LcsLengthAutomaton("hello", "hello"), 5u);
  EXPECT_EQ(LcsLengthAutomaton("abcdef", "zabcy"), 3u);
  EXPECT_EQ(LcsLengthAutomaton("abc", "xyz"), 0u);
  EXPECT_EQ(LcsLengthAutomaton("", "abc"), 0u);
  EXPECT_EQ(LcsLengthAutomaton("abc", ""), 0u);
}

TEST(SuffixAutomatonTest, ReusableAcrossQueries) {
  SuffixAutomaton sam("bibliography");
  EXPECT_EQ(sam.LcsLengthWith("biography"), 8u);  // "iography"
  EXPECT_EQ(sam.LcsLengthWith("bibliography"), 12u);
  EXPECT_EQ(sam.LcsLengthWith("zzz"), 0u);
}

TEST(SuffixAutomatonTest, StateCountLinear) {
  SuffixAutomaton sam("abcabcabc");
  // A suffix automaton has at most 2n-1 states (n >= 2), plus the initial.
  EXPECT_LE(sam.num_states(), 2u * 9u);
}

TEST(SuffixAutomatonTest, HandlesNonLetterBytes) {
  EXPECT_EQ(LcsLengthAutomaton("a-b-c", "b-c"), 3u);
  EXPECT_EQ(LcsLengthAutomaton("12345", "234"), 3u);
}

/// Property: the automaton agrees with the DP on random strings.
TEST(LcsPropertyTest, AutomatonAgreesWithDp) {
  Rng rng(77);
  const std::string alphabet = "abcde";
  for (int trial = 0; trial < 300; ++trial) {
    std::string a, b;
    const std::size_t la = rng.NextBelow(20);
    const std::size_t lb = rng.NextBelow(20);
    for (std::size_t i = 0; i < la; ++i) {
      a.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    for (std::size_t i = 0; i < lb; ++i) {
      b.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    EXPECT_EQ(LcsLengthDp(a, b), LcsLengthAutomaton(a, b))
        << "a=" << a << " b=" << b;
  }
}

/// Property: LCS length is bounded by both string lengths and is exactly
/// the length for identical strings.
TEST(LcsPropertyTest, Bounds) {
  Rng rng(88);
  const std::string alphabet = "abc";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    const std::size_t la = 1 + rng.NextBelow(15);
    const std::size_t lb = 1 + rng.NextBelow(15);
    for (std::size_t i = 0; i < la; ++i) {
      a.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    for (std::size_t i = 0; i < lb; ++i) {
      b.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    const std::size_t lcs = LcsLengthDp(a, b);
    EXPECT_LE(lcs, std::min(a.size(), b.size()));
    EXPECT_EQ(LcsLengthDp(a, a), a.size());
  }
}

}  // namespace
}  // namespace paygo
