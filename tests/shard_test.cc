// Unit tests of the domain-sharding building blocks: the consistent-hash
// ring and corpus partitioner, the length-prefixed wire protocol, the
// replication delta log's contiguity semantics, and the router's
// scatter/gather merge with graceful degradation around down shards.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/integration_system.h"
#include "gtest/gtest.h"
#include "serve/paygo_server.h"
#include "shard/hash_ring.h"
#include "shard/replication.h"
#include "shard/router.h"
#include "shard/shard_service.h"
#include "shard/wire.h"
#include "synth/web_generator.h"

namespace paygo {
namespace {

SystemOptions TestOptions() {
  SystemOptions options;
  options.hac.tau_c_sim = 0.25;
  options.assignment.tau_c_sim = 0.25;
  return options;
}

TEST(HashRingTest, DeterministicAndReasonablySpread) {
  const HashRing a(4), b(4);
  std::map<std::uint32_t, int> counts;
  for (int k = 0; k < 100; ++k) {
    const std::string key = "domain" + std::to_string(k);
    const std::uint32_t shard = a.ShardFor(key);
    EXPECT_EQ(shard, b.ShardFor(key)) << key;
    EXPECT_LT(shard, 4u);
    counts[shard]++;
  }
  // 100 uniform keys over 4 shards: every shard owns a meaningful share.
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [shard, n] : counts) {
    EXPECT_GE(n, 10) << "shard " << shard << " starved";
  }
}

TEST(HashRingTest, GrowingTheRingMovesOnlyAMinorityOfKeys) {
  const HashRing four(4), five(5);
  int moved = 0;
  const int total = 200;
  for (int k = 0; k < total; ++k) {
    const std::string key = "domain" + std::to_string(k);
    if (four.ShardFor(key) != five.ShardFor(key)) ++moved;
  }
  // Consistent hashing moves ~1/5 of the keys when a fifth shard joins; a
  // modulo assignment would move ~4/5. Allow slack over the ideal 20%.
  EXPECT_LT(moved, total / 2);
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, PartitionCorpusPreservesSchemasAndLabels) {
  const SchemaCorpus corpus = MakeDwSsCorpus();
  const HashRing ring(3);
  const std::vector<SchemaCorpus> parts = PartitionCorpus(corpus, ring);
  ASSERT_EQ(parts.size(), 3u);

  std::size_t total = 0;
  std::map<std::string, std::size_t> source_to_shard;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    total += parts[s].size();
    for (std::size_t i = 0; i < parts[s].size(); ++i) {
      source_to_shard[parts[s].schema(i).source_name] = s;
      // Every schema sits on the shard its ring key maps to.
      EXPECT_EQ(ring.ShardFor(ShardKeyOf(parts[s], i)), s);
    }
  }
  EXPECT_EQ(total, corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    ASSERT_TRUE(source_to_shard.count(corpus.schema(i).source_name));
    EXPECT_EQ(source_to_shard[corpus.schema(i).source_name],
              ring.ShardFor(ShardKeyOf(corpus, i)));
  }
  // Whole domains stay together: schemas sharing a first label share a
  // shard, which is what makes per-shard posteriors meaningful.
  std::map<std::string, std::size_t> label_to_shard;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (std::size_t i = 0; i < parts[s].size(); ++i) {
      if (parts[s].labels(i).empty()) continue;
      const std::string& label = parts[s].labels(i)[0];
      auto [it, inserted] = label_to_shard.emplace(label, s);
      EXPECT_EQ(it->second, s) << "domain '" << label << "' split";
    }
  }
}

TEST(HashRingTest, ShardKeyFallsBackToSourceName) {
  SchemaCorpus corpus;
  Schema schema;
  schema.source_name = "unlabeled-source";
  schema.attributes = {"a", "b"};
  corpus.Add(schema, {});
  EXPECT_EQ(ShardKeyOf(corpus, 0), "unlabeled-source");
}

TEST(WireTest, FrameRoundTripOverSocketPair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  const std::string payload = "gen 42\nsome multi-line\npayload";
  ASSERT_TRUE(WriteFrame(fds[0], FrameType::kSnapshotDelta, payload).ok());
  Result<Frame> frame = ReadFrame(fds[1]);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, FrameType::kSnapshotDelta);
  EXPECT_EQ(frame->payload, payload);

  // Empty payloads are legal (kPing carries none).
  ASSERT_TRUE(WriteFrame(fds[1], FrameType::kPing, "").ok());
  frame = ReadFrame(fds[0]);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, FrameType::kPing);
  EXPECT_TRUE(frame->payload.empty());

  // A frame longer than the reader's cap is rejected, not buffered.
  ASSERT_TRUE(
      WriteFrame(fds[0], FrameType::kClassify, std::string(1024, 'x')).ok());
  EXPECT_FALSE(ReadFrame(fds[1], /*max_bytes=*/512).ok());

  close(fds[0]);
  close(fds[1]);
}

TEST(WireTest, ParseShardAddressForms) {
  Result<ShardAddress> full = ParseShardAddress("10.1.2.3:4567");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->host, "10.1.2.3");
  EXPECT_EQ(full->port, 4567);

  Result<ShardAddress> bare = ParseShardAddress("8080");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 8080);

  EXPECT_FALSE(ParseShardAddress("").ok());
  EXPECT_FALSE(ParseShardAddress("host:notaport").ok());
  EXPECT_FALSE(ParseShardAddress("host:0").ok());
}

TEST(ReplicationLogTest, ServesContiguousRangesOnly) {
  ReplicationLog log;
  log.Append(2, "b");
  log.Append(3, "c");
  log.Append(4, "d");

  // Full coverage of (1, 4] and a suffix (2, 4].
  auto all = log.RecordsCovering(1, 4);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(*all, "bcd");
  auto suffix = log.RecordsCovering(2, 4);
  ASSERT_TRUE(suffix.has_value());
  EXPECT_EQ(*suffix, "cd");

  // The log starts at generation 2, so it cannot prove (0, 4].
  EXPECT_FALSE(log.RecordsCovering(0, 4).has_value());
  // Nothing newer than 4 exists.
  EXPECT_FALSE(log.RecordsCovering(2, 5).has_value());
}

TEST(ReplicationLogTest, GenerationGapClearsTheLog) {
  ReplicationLog log;
  log.Append(1, "a");
  log.Append(2, "b");
  // Generation 4 is not 3: an unlogged mutation published in between, so
  // the log can no longer prove contiguity and must drop its history.
  log.Append(4, "d");
  EXPECT_EQ(log.size(), 1u);
  EXPECT_FALSE(log.RecordsCovering(1, 4).has_value());
  auto tail = log.RecordsCovering(3, 4);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, "d");
}

TEST(ReplicationLogTest, TrimsToCapacity) {
  ReplicationLog log(/*capacity=*/2);
  log.Append(1, "a");
  log.Append(2, "b");
  log.Append(3, "c");
  EXPECT_EQ(log.size(), 2u);
  EXPECT_FALSE(log.RecordsCovering(0, 3).has_value());  // "a" trimmed away
  auto kept = log.RecordsCovering(1, 3);
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(*kept, "bc");
}

TEST(ReplicationTest, DeltaRecordRoundTrip) {
  Schema schema;
  schema.source_name = "delta-source";
  schema.attributes = {"first attribute", "second attribute"};
  const std::string record =
      MakeDeltaRecord(7, schema, {"some-domain", "alt-label"});
  const std::string payload = "gen 7\n" + record;

  std::uint64_t through = 0;
  Result<std::vector<DeltaRecord>> parsed =
      ParseDeltaPayload(payload, &through);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(through, 7u);
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].generation, 7u);
  EXPECT_EQ((*parsed)[0].schema.source_name, "delta-source");
  EXPECT_EQ((*parsed)[0].schema.attributes, schema.attributes);
  // corpus_io normalizes label order, so the round trip comes back sorted.
  EXPECT_EQ((*parsed)[0].labels,
            (std::vector<std::string>{"alt-label", "some-domain"}));
}

TEST(RouterTest, MergesOneShardAndDegradesAroundADownOne) {
  auto system = IntegrationSystem::Build(MakeDwCorpus(), TestOptions());
  ASSERT_TRUE(system.ok()) << system.status();
  // Install after Start (the ShardNode flow) so the shard publishes at
  // generation >= 1 and the router health view reflects it.
  PaygoServer server{ServeOptions{}};
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.InstallSystemAsync(std::move(*system)).get().ok());
  ShardService service(server);
  Result<std::uint16_t> port = service.Start();
  ASSERT_TRUE(port.ok()) << port.status();

  // Shard 1 points at a port nothing listens on: the scatter must degrade
  // around it instead of failing the query.
  RouterOptions options;
  options.request_timeout_ms = 1000;
  const ShardRouter router(
      {ShardAddress{"127.0.0.1", *port}, ShardAddress{"127.0.0.1", 1}},
      options);
  Result<ScatterResult> scattered =
      router.Classify("departure city arrival", 3);
  ASSERT_TRUE(scattered.ok()) << scattered.status();
  EXPECT_EQ(scattered->shards_ok, 1u);
  EXPECT_EQ(scattered->shards_total, 2u);
  ASSERT_FALSE(scattered->ranked.empty());
  EXPECT_LE(scattered->ranked.size(), 3u);
  for (const RoutedDomain& d : scattered->ranked) EXPECT_EQ(d.shard, 0u);

  // The merged scores are the live shard's own posteriors, round-tripped
  // exactly through the %.17g wire encoding.
  Result<std::vector<DomainScore>> local =
      server.Classify("departure city arrival");
  ASSERT_TRUE(local.ok());
  ASSERT_GE(local->size(), scattered->ranked.size());
  for (std::size_t i = 0; i < scattered->ranked.size(); ++i) {
    EXPECT_EQ(scattered->ranked[i].domain, (*local)[i].domain);
    EXPECT_DOUBLE_EQ(scattered->ranked[i].log_posterior,
                     (*local)[i].log_posterior);
  }

  const std::vector<ShardRouter::ShardHealth> health = router.Health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_TRUE(health[0].up);
  EXPECT_GE(health[0].generation, 1u);
  EXPECT_FALSE(health[1].up);
  EXPECT_GE(health[1].consecutive_failures, 1u);
  EXPECT_NE(router.ShardzJson().find("\"up\": false"), std::string::npos);

  service.Stop();
  server.Stop();

  // With every shard down the scatter finally fails.
  EXPECT_FALSE(router.Classify("departure city arrival", 3).ok());
}

}  // namespace
}  // namespace paygo
