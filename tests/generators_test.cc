#include "synth/ddh_generator.h"
#include "synth/web_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "schema/corpus_io.h"

namespace paygo {
namespace {

TEST(DdhGeneratorTest, MatchesThesisScale) {
  DdhGeneratorOptions opts;
  opts.num_schemas = 200;  // scaled down for test speed
  const SchemaCorpus corpus = MakeDdhCorpus(opts);
  EXPECT_EQ(corpus.size(), 200u);
  EXPECT_EQ(corpus.name(), "DDH");
  const auto labels = corpus.AllLabels();
  EXPECT_EQ(labels.size(), 5u);
}

TEST(DdhGeneratorTest, EverySchemaSingleLabelWithBoundedAttributes) {
  DdhGeneratorOptions opts;
  opts.num_schemas = 300;
  const SchemaCorpus corpus = MakeDdhCorpus(opts);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus.labels(i).size(), 1u);
    EXPECT_GE(corpus.schema(i).attributes.size(), opts.min_attributes);
    EXPECT_LE(corpus.schema(i).attributes.size(), opts.max_attributes);
  }
}

TEST(DdhGeneratorTest, DeterministicGivenSeed) {
  DdhGeneratorOptions opts;
  opts.num_schemas = 50;
  const SchemaCorpus a = MakeDdhCorpus(opts);
  const SchemaCorpus b = MakeDdhCorpus(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.schema(i).attributes, b.schema(i).attributes);
    EXPECT_EQ(a.labels(i), b.labels(i));
  }
  opts.seed = 999;
  const SchemaCorpus c = MakeDdhCorpus(opts);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a.schema(i).attributes != c.schema(i).attributes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WebGeneratorTest, DwMatchesTable61Shape) {
  const SchemaCorpus dw = MakeDwCorpus();
  Tokenizer tok;
  const CorpusStats stats = dw.ComputeStats(tok);
  EXPECT_EQ(stats.num_schemas, 63u);  // Table 6.1
  EXPECT_EQ(stats.num_labels, 24u);   // Table 6.1
  EXPECT_LE(stats.max_labels_per_schema, 2u);
  // Avg terms per schema ~14 in the thesis; allow a generous band.
  EXPECT_GT(stats.avg_terms_per_schema, 8.0);
  EXPECT_LT(stats.avg_terms_per_schema, 22.0);
  // ~25% unique schemas.
  std::size_t unique = 0;
  for (std::size_t i = 0; i < dw.size(); ++i) {
    if (dw.schema(i).source_name.find("unique") != std::string::npos) {
      ++unique;
    }
  }
  EXPECT_NEAR(static_cast<double>(unique) / 63.0, 0.25, 0.05);
}

TEST(WebGeneratorTest, SsMatchesTable61Shape) {
  const SchemaCorpus ss = MakeSsCorpus();
  Tokenizer tok;
  const CorpusStats stats = ss.ComputeStats(tok);
  EXPECT_EQ(stats.num_schemas, 252u);  // Table 6.1
  // 85 labels in the thesis; the generator must land close.
  EXPECT_GE(stats.num_labels, 78u);
  EXPECT_LE(stats.num_labels, 92u);
  EXPECT_LE(stats.max_labels_per_schema, 4u);
  EXPECT_GT(stats.avg_labels_per_schema, 1.2);
  EXPECT_LT(stats.avg_labels_per_schema, 1.8);
}

TEST(WebGeneratorTest, UnionHasNinetySevenishLabels) {
  const SchemaCorpus both = MakeDwSsCorpus();
  EXPECT_EQ(both.size(), 63u + 252u);
  const auto labels = both.AllLabels();
  // Thesis: 97 labels over DW+SS.
  EXPECT_GE(labels.size(), 90u);
  EXPECT_LE(labels.size(), 104u);
}

TEST(WebGeneratorTest, SsIsNoisierThanDw) {
  Tokenizer tok;
  const CorpusStats dw = MakeDwCorpus().ComputeStats(tok);
  const CorpusStats ss = MakeSsCorpus().ComputeStats(tok);
  // More labels per schema and more schemas per label in SS (Table 6.1).
  EXPECT_GT(ss.avg_labels_per_schema, dw.avg_labels_per_schema);
  EXPECT_GT(ss.max_schemas_per_label, dw.max_schemas_per_label);
}

TEST(WebGeneratorTest, DeterministicAndSeedSensitive) {
  const SchemaCorpus a = MakeDwCorpus();
  const SchemaCorpus b = MakeDwCorpus();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.schema(i).attributes, b.schema(i).attributes);
  }
  WebGeneratorOptions opts;
  opts.seed = 12345;
  const SchemaCorpus c = MakeDwCorpus(opts);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a.schema(i).attributes != c.schema(i).attributes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WebGeneratorTest, AllSchemasHaveAttributesAndLabels) {
  for (const SchemaCorpus& corpus : {MakeDwCorpus(), MakeSsCorpus()}) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_FALSE(corpus.schema(i).attributes.empty())
          << corpus.schema(i).source_name;
      EXPECT_FALSE(corpus.labels(i).empty())
          << corpus.schema(i).source_name;
      EXPECT_FALSE(corpus.schema(i).source_name.empty());
    }
  }
}

TEST(WebGeneratorTest, CorporaSerializeAndParseBack) {
  const SchemaCorpus dw = MakeDwCorpus();
  const auto parsed = ParseCorpus(SerializeCorpus(dw));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), dw.size());
  for (std::size_t i = 0; i < dw.size(); ++i) {
    EXPECT_EQ(parsed->schema(i).attributes, dw.schema(i).attributes);
    EXPECT_EQ(parsed->labels(i), dw.labels(i));
  }
}

}  // namespace
}  // namespace paygo
