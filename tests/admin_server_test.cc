/// \file admin_server_test.cc
/// \brief End-to-end tests of the embedded admin HTTP endpoint, the
/// Prometheus exposition, readiness semantics, and the JSONL exporter —
/// all over real loopback sockets.

#include "obs/admin_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/stats.h"
#include "serve/admin_endpoints.h"
#include "serve/paygo_server.h"
#include "strict_json.h"

namespace paygo {
namespace {

/// The same tiny three-domain corpus the serving tests use.
SchemaCorpus SmallCorpus() {
  SchemaCorpus corpus("small");
  corpus.Add(Schema("expedia",
                    {"departure airport", "destination airport",
                     "departing", "returning", "airline"}),
             {"travel"});
  corpus.Add(Schema("orbitz",
                    {"departure airport", "destination", "airline",
                     "passengers"}),
             {"travel"});
  corpus.Add(Schema("kayak",
                    {"departure", "destination airport", "airline", "class"}),
             {"travel"});
  corpus.Add(Schema("dblp", {"title", "authors", "year of publish",
                             "conference name"}),
             {"bibliography"});
  corpus.Add(Schema("citeseer", {"title", "author", "year", "journal"}),
             {"bibliography"});
  corpus.Add(Schema("autotrader", {"make", "model", "year", "price"}),
             {"cars"});
  return corpus;
}

std::unique_ptr<IntegrationSystem> BuildSmallSystem() {
  auto sys = IntegrationSystem::Build(SmallCorpus());
  EXPECT_TRUE(sys.ok()) << sys.status();
  return std::move(*sys);
}

int StatusCodeOf(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos) return -1;
  return std::atoi(response.c_str() + sp + 1);
}

std::string BodyOf(const std::string& response) {
  const std::size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? "" : response.substr(sep + 4);
}

std::string HeaderOf(const std::string& response, const std::string& name) {
  std::istringstream is(response.substr(0, response.find("\r\n\r\n")));
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.substr(0, colon) == name) {
      std::size_t b = colon + 1;
      while (b < line.size() && line[b] == ' ') ++b;
      return line.substr(b);
    }
  }
  return "";
}

std::string MustGet(std::uint16_t port, const std::string& target) {
  Result<std::string> response = AdminHttpGet(port, target);
  EXPECT_TRUE(response.ok()) << response.status();
  return response.ok() ? *response : "";
}

/// Sends raw bytes to the admin port and returns the raw response — for
/// deliberately malformed requests AdminHttpGet cannot produce.
std::string RawRequest(std::uint16_t port, const std::string& data) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// --- plain AdminServer: routing, errors, limits ---

TEST(AdminServerTest, ServesHealthzIndexAnd404) {
  AdminServer admin;
  RegisterObsEndpoints(admin);
  ASSERT_TRUE(admin.Start().ok());
  ASSERT_GT(admin.port(), 0);

  const std::string healthz = MustGet(admin.port(), "/healthz");
  EXPECT_EQ(StatusCodeOf(healthz), 200);
  EXPECT_EQ(BodyOf(healthz), "ok\n");
  EXPECT_EQ(HeaderOf(healthz, "Connection"), "close");
  EXPECT_EQ(HeaderOf(healthz, "Content-Length"),
            std::to_string(BodyOf(healthz).size()));

  // GET / lists the registered paths.
  const std::string index = MustGet(admin.port(), "/");
  EXPECT_EQ(StatusCodeOf(index), 200);
  EXPECT_NE(BodyOf(index).find("/metrics"), std::string::npos);
  EXPECT_NE(BodyOf(index).find("/healthz"), std::string::npos);

  const std::string missing = MustGet(admin.port(), "/no-such-page");
  EXPECT_EQ(StatusCodeOf(missing), 404);

  admin.Stop();
  // Idempotent Stop, and the port no longer answers.
  admin.Stop();
  EXPECT_FALSE(AdminHttpGet(admin.port(), "/healthz", 200).ok());
}

TEST(AdminServerTest, RejectsNonGetMalformedAndOversizedRequests) {
  AdminServerOptions options;
  options.max_request_bytes = 1024;
  AdminServer admin(options);
  RegisterObsEndpoints(admin);
  ASSERT_TRUE(admin.Start().ok());

  const std::string post = RawRequest(
      admin.port(),
      "POST /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Length: 2\r\n\r\nhi");
  EXPECT_EQ(StatusCodeOf(post), 405);

  const std::string garbage =
      RawRequest(admin.port(), "this is not http\r\n\r\n");
  EXPECT_EQ(StatusCodeOf(garbage), 400);

  // Headers larger than max_request_bytes are answered 413.
  std::string huge = "GET /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\nX-Pad: ";
  huge += std::string(4096, 'x');
  huge += "\r\n\r\n";
  const std::string oversized = RawRequest(admin.port(), huge);
  EXPECT_EQ(StatusCodeOf(oversized), 413);

  admin.Stop();
}

TEST(AdminServerTest, QueryStringIsSplitOffThePath) {
  AdminServer admin;
  admin.Handle("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.path + "|" + request.query + "|" + request.host;
    return response;
  });
  ASSERT_TRUE(admin.Start().ok());
  const std::string got = MustGet(admin.port(), "/echo?name=hac&k=2");
  EXPECT_EQ(StatusCodeOf(got), 200);
  EXPECT_EQ(BodyOf(got), "/echo|name=hac&k=2|127.0.0.1");
  admin.Stop();
}

// --- Prometheus exposition correctness ---

/// Strict-ish parser for the exposition format: validates line grammar,
/// metric-name charset, and returns samples keyed by "name{labels}".
struct PrometheusScrape {
  std::map<std::string, double> samples;  // "name{labels}" -> value
  std::map<std::string, std::string> types;

  static bool ValidName(const std::string& name) {
    if (name.empty()) return false;
    if (std::isdigit(static_cast<unsigned char>(name[0]))) return false;
    for (char c : name) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
        return false;
      }
    }
    return true;
  }

  static PrometheusScrape Parse(const std::string& text) {
    PrometheusScrape scrape;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty()) {
        ADD_FAILURE() << "blank line in exposition";
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream ls(line.substr(7));
        std::string name, kind;
        ls >> name >> kind;
        EXPECT_TRUE(ValidName(name)) << name;
        EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                    kind == "histogram")
            << kind;
        scrape.types[name] = kind;
        continue;
      }
      if (line[0] == '#') {
        ADD_FAILURE() << "unknown comment: " << line;
        continue;
      }
      // sample: name[{labels}] SP value
      const std::size_t sp = line.rfind(' ');
      if (sp == std::string::npos) {
        ADD_FAILURE() << "malformed sample line: " << line;
        continue;
      }
      const std::string key = line.substr(0, sp);
      const std::string bare = key.substr(0, key.find('{'));
      EXPECT_TRUE(ValidName(bare)) << bare;
      char* end = nullptr;
      const double value = std::strtod(line.c_str() + sp + 1, &end);
      EXPECT_EQ(*end, '\0') << "bad sample value: " << line;
      EXPECT_EQ(scrape.samples.count(key), 0u) << "duplicate sample " << key;
      scrape.samples[key] = value;
    }
    return scrape;
  }

  double at(const std::string& key) const {
    auto it = samples.find(key);
    EXPECT_NE(it, samples.end()) << "missing sample " << key;
    return it == samples.end() ? -1.0 : it->second;
  }
};

TEST(PrometheusExpositionTest, SanitizesNamesAndEmitsConsistentHistograms) {
  StatsRegistry registry;  // private instance: deterministic contents
  registry.GetCounter("paygo.test.merges")->Add(3);
  registry.GetGauge("paygo.test-queue.depth")->Set(-2);
  LatencyHistogram* h = registry.GetHistogram("paygo.test.latency_us");
  h->Record(1);
  h->Record(3);
  h->Record(1000000);

  const std::string text = registry.ToPrometheus();
  PrometheusScrape scrape = PrometheusScrape::Parse(text);

  // Names sanitized to [a-zA-Z0-9_].
  EXPECT_EQ(scrape.types.at("paygo_test_merges"), "counter");
  EXPECT_EQ(scrape.types.at("paygo_test_queue_depth"), "gauge");
  EXPECT_EQ(scrape.types.at("paygo_test_latency_us"), "histogram");
  EXPECT_EQ(scrape.at("paygo_test_merges"), 3.0);
  EXPECT_EQ(scrape.at("paygo_test_queue_depth"), -2.0);

  // Histogram: cumulative buckets, nondecreasing in le order, +Inf equals
  // _count, _sum is the exact sum of samples.
  double prev = 0.0;
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const std::string key = "paygo_test_latency_us_bucket{le=\"" +
                            std::to_string(
                                LatencyHistogram::BucketUpperMicros(i)) +
                            "\"}";
    const double cumulative = scrape.at(key);
    EXPECT_GE(cumulative, prev) << key;
    prev = cumulative;
  }
  EXPECT_EQ(scrape.at("paygo_test_latency_us_bucket{le=\"+Inf\"}"), 3.0);
  EXPECT_EQ(scrape.at("paygo_test_latency_us_count"), 3.0);
  EXPECT_EQ(scrape.at("paygo_test_latency_us_sum"), 1000004.0);
  // The exact buckets: 1 -> le=1, 3 -> le=4, 1000000 -> le=1048576.
  EXPECT_EQ(scrape.at("paygo_test_latency_us_bucket{le=\"1\"}"), 1.0);
  EXPECT_EQ(scrape.at("paygo_test_latency_us_bucket{le=\"4\"}"), 2.0);
  EXPECT_EQ(scrape.at("paygo_test_latency_us_bucket{le=\"1048576\"}"), 3.0);
}

TEST(PrometheusExpositionTest, ServedMetricsPageParses) {
  ServeOptions options;
  options.admin_port = 0;
  PaygoServer server(BuildSmallSystem(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.admin(), nullptr);
  (void)server.Classify("departure airline");

  const std::string metrics = MustGet(server.admin()->port(), "/metrics");
  EXPECT_EQ(StatusCodeOf(metrics), 200);
  EXPECT_NE(HeaderOf(metrics, "Content-Type").find("text/plain"),
            std::string::npos);
  PrometheusScrape scrape = PrometheusScrape::Parse(BodyOf(metrics));
  // The server's own metrics ride along with the global registry.
  EXPECT_EQ(scrape.types.at("paygo_serve_requests_submitted"), "counter");
  EXPECT_EQ(scrape.types.at("paygo_serve_classify_latency_us"), "histogram");
  EXPECT_GE(scrape.at("paygo_serve_requests_submitted"), 1.0);
  const double count = scrape.at("paygo_serve_classify_latency_us_count");
  EXPECT_EQ(scrape.at("paygo_serve_classify_latency_us_bucket{le=\"+Inf\"}"),
            count);
  server.Stop();
}

// --- JSON pages ---

TEST(AdminEndpointsTest, VarzStatuszSlowzAreStrictJson) {
  ServeOptions options;
  options.admin_port = 0;
  options.slow_query_threshold_us = 0;  // every request qualifies
  PaygoServer server(BuildSmallSystem(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.admin(), nullptr);
  (void)server.Classify("departure airline");
  const std::uint16_t port = server.admin()->port();

  for (const char* target : {"/varz", "/statusz", "/slowz", "/tracez"}) {
    const std::string response = MustGet(port, target);
    EXPECT_EQ(StatusCodeOf(response), 200) << target;
    EXPECT_EQ(HeaderOf(response, "Content-Type"), "application/json")
        << target;
    EXPECT_TRUE(strict_json::IsValid(BodyOf(response)))
        << target << ": " << strict_json::ErrorOf(BodyOf(response));
  }

  const std::string statusz = BodyOf(MustGet(port, "/statusz"));
  EXPECT_NE(statusz.find("\"generation\""), std::string::npos);
  EXPECT_NE(statusz.find("\"queue_capacity\""), std::string::npos);
  EXPECT_NE(statusz.find("\"cache_hit_rate\""), std::string::npos);
  EXPECT_NE(statusz.find("\"ready\": true"), std::string::npos);

  const std::string varz = BodyOf(MustGet(port, "/varz"));
  EXPECT_NE(varz.find("\"stats\""), std::string::npos);
  EXPECT_NE(varz.find("\"server\""), std::string::npos);
  server.Stop();
}

// --- readiness semantics ---

TEST(AdminEndpointsTest, ReadyzFlipsExactlyOnFirstSnapshotInstall) {
  ServeOptions options;
  options.admin_port = 0;
  PaygoServer server(options);  // deferred bootstrap: no snapshot yet
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.admin(), nullptr);
  const std::uint16_t port = server.admin()->port();

  // Alive but not ready: /healthz 200, /readyz 503.
  EXPECT_EQ(StatusCodeOf(MustGet(port, "/healthz")), 200);
  const std::string not_ready = MustGet(port, "/readyz");
  EXPECT_EQ(StatusCodeOf(not_ready), 503);
  EXPECT_NE(BodyOf(not_ready).find("no-snapshot-installed"),
            std::string::npos);
  EXPECT_EQ(server.generation(), 0u);

  // Requests before the install fail cleanly instead of crashing.
  Result<std::vector<DomainScore>> early =
      server.Classify("departure airline");
  EXPECT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);

  // Install flips readiness exactly once the snapshot is published.
  ASSERT_TRUE(server.InstallSystemAsync(BuildSmallSystem()).get().ok());
  const std::string ready = MustGet(port, "/readyz");
  EXPECT_EQ(StatusCodeOf(ready), 200);
  EXPECT_EQ(BodyOf(ready), "ready\n");
  EXPECT_EQ(server.generation(), 1u);

  Result<std::vector<DomainScore>> scores =
      server.Classify("departure airline");
  EXPECT_TRUE(scores.ok()) << scores.status();
  server.Stop();
}

TEST(AdminEndpointsTest, QueueSaturationMakesReadyzReport503) {
  ServeOptions options;
  options.admin_port = 0;
  options.num_workers = 1;
  options.queue_depth = 4;
  options.ready_queue_watermark = 0.5;  // saturated when depth > 2
  options.queue_timeout_ms = 0;         // don't shed the backlog
  options.artificial_request_delay_us = 50000;
  options.cache_capacity = 0;
  PaygoServer server(BuildSmallSystem(), options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.admin()->port();

  std::vector<std::future<Result<std::vector<DomainScore>>>> inflight;
  for (int i = 0; i < 8; ++i) {
    inflight.push_back(
        server.ClassifyAsync("query " + std::to_string(i)));
  }
  // With one worker sleeping 50ms per request, the queue stays over the
  // watermark for a couple hundred ms — long enough to observe.
  EXPECT_TRUE(server.Health().queue_saturated) << server.Health().Describe();
  const std::string saturated = MustGet(port, "/readyz");
  EXPECT_EQ(StatusCodeOf(saturated), 503);
  EXPECT_NE(BodyOf(saturated).find("queue-saturated"), std::string::npos);

  for (auto& f : inflight) (void)f.get();
  EXPECT_FALSE(server.Health().queue_saturated);
  EXPECT_EQ(StatusCodeOf(MustGet(port, "/readyz")), 200);
  server.Stop();
}

// --- concurrency: scrapes racing snapshot rebuilds (TSan target) ---

TEST(AdminEndpointsTest, ConcurrentScrapesDuringRebuildsStayConsistent) {
  ServeOptions options;
  options.admin_port = 0;
  PaygoServer server(BuildSmallSystem(), options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.admin()->port();

  std::atomic<bool> stop{false};
  std::atomic<int> scrape_errors{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      const char* targets[] = {"/metrics", "/readyz", "/statusz"};
      int i = t;
      while (!stop.load(std::memory_order_acquire)) {
        Result<std::string> response =
            AdminHttpGet(port, targets[i++ % 3]);
        if (!response.ok() || StatusCodeOf(*response) >= 500) {
          scrape_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 0; i < 6; ++i) {
    Schema schema;
    schema.source_name = "live-" + std::to_string(i);
    schema.attributes = {"departure city", "destination city",
                         "fare " + std::to_string(i)};
    ASSERT_TRUE(
        server.AddSchemaAsync(std::move(schema), {"travel"}).get().ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& s : scrapers) s.join();

  EXPECT_EQ(scrape_errors.load(), 0);
  EXPECT_EQ(server.generation(), 6u);
  // A final scrape reflects the rebuilt state.
  const std::string statusz = BodyOf(MustGet(port, "/statusz"));
  EXPECT_NE(statusz.find("\"generation\": 6"), std::string::npos);
  server.Stop();
}

// --- exporter ---

TEST(MetricsSnapshotterTest, AppendsStrictJsonRecordsWithDeltas) {
  const std::string path =
      testing::TempDir() + "/paygo_exporter_test.jsonl";
  std::remove(path.c_str());

  StatsRegistry registry;
  Counter* requests = registry.GetCounter("paygo.test.requests");
  registry.GetHistogram("paygo.test.latency_us")->Record(100);
  requests->Add(5);

  MetricsSnapshotterOptions options;
  options.path = path;
  options.interval_ms = 10;
  MetricsSnapshotter exporter(registry, options);
  ASSERT_TRUE(exporter.Start().ok());
  // Counter movement across intervals shows up as deltas.
  for (int i = 0; i < 5; ++i) {
    requests->Add(2);
    std::this_thread::sleep_for(std::chrono::milliseconds(12));
  }
  exporter.Stop();
  EXPECT_GE(exporter.records_written(), 1u);
  EXPECT_FALSE(exporter.running());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  bool saw_delta = false;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_TRUE(strict_json::IsValid(line))
        << strict_json::ErrorOf(line) << "\n" << line;
    EXPECT_NE(line.find("\"seq\""), std::string::npos);
    EXPECT_NE(line.find("\"paygo.test.requests\""), std::string::npos);
    EXPECT_NE(line.find("\"paygo.test.latency_us\""), std::string::npos);
    if (line.find("\"delta\": 2") != std::string::npos) saw_delta = true;
  }
  EXPECT_EQ(lines, exporter.records_written());
  EXPECT_TRUE(saw_delta) << "no interval captured a counter delta";
  std::remove(path.c_str());
}

TEST(MetricsSnapshotterTest, FailsCleanlyOnUnwritablePath) {
  StatsRegistry registry;
  MetricsSnapshotterOptions options;
  options.path = "/nonexistent-dir/metrics.jsonl";
  MetricsSnapshotter exporter(registry, options);
  EXPECT_FALSE(exporter.Start().ok());
  EXPECT_FALSE(exporter.running());
  exporter.Stop();  // no-op, must not crash
}

TEST(AdminEndpointsTest, ServerWiresExporterThroughServeOptions) {
  const std::string path =
      testing::TempDir() + "/paygo_server_export_test.jsonl";
  std::remove(path.c_str());

  ServeOptions options;
  options.export_path = path;
  options.export_interval_ms = 10;
  PaygoServer server(BuildSmallSystem(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.exporter(), nullptr);
  (void)server.Classify("departure airline");
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  server.Stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(strict_json::IsValid(line)) << strict_json::ErrorOf(line);
  }
  EXPECT_GE(lines, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paygo
