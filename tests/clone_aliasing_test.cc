/// \file clone_aliasing_test.cc
/// \brief Structural-sharing safety: mutating a Clone() must never leak
/// writes into the original, and must share every untouched component.
///
/// IntegrationSystem::Clone() is pointer copies — the corpus, lexicon,
/// feature vectors, similarity matrix, classifier, and mediations are all
/// shared_ptr<const T> aliases of the original's components. Two things
/// must therefore hold:
///   * isolation — every mutator replaces (copy-on-write) exactly the
///     components it changes, so the original's observable state is
///     byte-identical after any sequence of clone mutations;
///   * sharing — components a mutation does NOT touch keep the original's
///     addresses, which is what makes Clone() O(pointers) instead of
///     O(corpus).
/// The reader-hammer test is part of the TSan gate: readers score queries
/// against a retained old snapshot while the server's writer thread mutates
/// structurally-shared clones; any in-place write to a shared component is
/// a data race TSan turns into a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/integration_system.h"
#include "obs/trace.h"
#include "serve/paygo_server.h"

namespace paygo {
namespace {

/// Tracing stays on so the TSan run covers the trace rings under the same
/// contention (same idiom as serve_concurrency_test).
[[maybe_unused]] const bool kTracingEnabled = [] {
  Tracer::Enable();
  return true;
}();

SchemaCorpus SmallCorpus() {
  SchemaCorpus corpus("small");
  corpus.Add(Schema("expedia",
                    {"departure airport", "destination airport",
                     "departing", "returning", "airline"}),
             {"travel"});
  corpus.Add(Schema("orbitz",
                    {"departure airport", "destination", "airline",
                     "passengers"}),
             {"travel"});
  corpus.Add(Schema("kayak",
                    {"departure", "destination airport", "airline", "class"}),
             {"travel"});
  corpus.Add(Schema("dblp", {"title", "authors", "year of publish",
                             "conference name"}),
             {"bibliography"});
  corpus.Add(Schema("citeseer", {"title", "author", "year", "journal"}),
             {"bibliography"});
  corpus.Add(Schema("autotrader", {"make", "model", "year", "price"}),
             {"cars"});
  return corpus;
}

Schema ExtraSchema(int i) {
  Schema schema;
  schema.source_name = "live-" + std::to_string(i);
  schema.attributes = {"departure airport", "destination airport",
                       "airline", "fare " + std::to_string(i)};
  return schema;
}

/// Everything a reader can observe about a system, flattened to values
/// (not pointers) so it survives the original being cloned and the clones
/// mutated.
struct ObservableState {
  std::size_t corpus_size = 0;
  std::size_t num_features = 0;
  std::size_t num_domains = 0;
  std::vector<double> priors;
  std::vector<float> sims;
  std::vector<std::string> mediated_attrs;  // domain 0's interface
  std::vector<DomainScore> scores;          // a fixed query's ranking

  static ObservableState Capture(const IntegrationSystem& sys) {
    ObservableState s;
    s.corpus_size = sys.corpus().size();
    s.num_features = sys.features().size();
    s.num_domains = sys.domains().num_domains();
    for (std::uint32_t r = 0; r < sys.classifier().num_domains(); ++r) {
      s.priors.push_back(sys.classifier().Prior(r));
    }
    const std::size_t n = sys.similarities().size();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        s.sims.push_back(static_cast<float>(sys.similarities().At(i, j)));
      }
    }
    for (const auto& attr : sys.mediation(0).mediated.attributes) {
      s.mediated_attrs.push_back(attr.name);
    }
    auto scores = sys.ClassifyKeywordQuery("departure airline destination");
    EXPECT_TRUE(scores.ok()) << scores.status();
    if (scores.ok()) s.scores = *scores;
    return s;
  }

  void ExpectEqual(const ObservableState& other) const {
    EXPECT_EQ(corpus_size, other.corpus_size);
    EXPECT_EQ(num_features, other.num_features);
    EXPECT_EQ(num_domains, other.num_domains);
    EXPECT_EQ(priors, other.priors);
    EXPECT_EQ(sims, other.sims);
    EXPECT_EQ(mediated_attrs, other.mediated_attrs);
    ASSERT_EQ(scores.size(), other.scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i].domain, other.scores[i].domain);
      EXPECT_EQ(scores[i].log_posterior, other.scores[i].log_posterior);
    }
  }
};

TEST(CloneAliasingTest, MutatedCloneNeverLeaksIntoOriginal) {
  auto built = IntegrationSystem::Build(SmallCorpus());
  ASSERT_TRUE(built.ok()) << built.status();
  IntegrationSystem& original = **built;
  const ObservableState before = ObservableState::Capture(original);

  // Pile every mutator onto clones of the same original: schema adds,
  // tuple attachment, click feedback, and a full rebuild.
  for (int i = 0; i < 3; ++i) {
    auto clone = original.Clone();
    ASSERT_TRUE(clone->AddSchema(ExtraSchema(i), {"travel"}).ok());
    ASSERT_GT(clone->corpus().size(), before.corpus_size);
  }
  {
    auto clone = original.Clone();
    ASSERT_TRUE(
        clone
            ->AttachTuples(0, {Tuple({"YYZ", "CAI", "monday", "friday",
                                      "acme air"})})
            .ok());
  }
  {
    auto clone = original.Clone();
    FeedbackStore store;
    store.RecordImpression(0);
    store.RecordClick(0);
    ASSERT_TRUE(clone->ApplyFeedback(store).ok());
  }
  {
    auto clone = original.Clone();
    ASSERT_TRUE(clone->RebuildFromScratch().ok());
  }

  before.ExpectEqual(ObservableState::Capture(original));
}

TEST(CloneAliasingTest, CloneSharesUntouchedComponents) {
  auto built = IntegrationSystem::Build(SmallCorpus());
  ASSERT_TRUE(built.ok()) << built.status();
  IntegrationSystem& original = **built;

  // A pristine clone shares everything.
  auto clone = original.Clone();
  EXPECT_EQ(&clone->corpus(), &original.corpus());
  EXPECT_EQ(&clone->lexicon(), &original.lexicon());
  EXPECT_EQ(&clone->features(), &original.features());
  EXPECT_EQ(&clone->similarities(), &original.similarities());
  EXPECT_EQ(&clone->classifier(), &original.classifier());
  EXPECT_EQ(&clone->mediation(0), &original.mediation(0));

  // AddSchema copy-on-writes the corpus/features/sims/classifier but keeps
  // the frozen lexicon and the mediations of domains the schema did not
  // join. ExtraSchema is pure travel vocabulary, so the bibliography and
  // cars domains must keep the original's mediation objects.
  ASSERT_TRUE(clone->AddSchema(ExtraSchema(0), {"travel"}).ok());
  EXPECT_NE(&clone->corpus(), &original.corpus());
  EXPECT_NE(&clone->features(), &original.features());
  EXPECT_NE(&clone->similarities(), &original.similarities());
  EXPECT_NE(&clone->classifier(), &original.classifier());
  EXPECT_EQ(&clone->lexicon(), &original.lexicon());
  std::size_t shared_mediations = 0;
  for (std::uint32_t r = 0; r < original.domains().num_domains(); ++r) {
    if (&clone->mediation(r) == &original.mediation(r)) ++shared_mediations;
  }
  EXPECT_GT(shared_mediations, 0u)
      << "a travel-only add must not rebuild every domain's mediation";

  // Click-only feedback replaces just the classifier.
  auto clone2 = original.Clone();
  FeedbackStore store;
  store.RecordImpression(0);
  store.RecordClick(0);
  ASSERT_TRUE(clone2->ApplyFeedback(store).ok());
  EXPECT_NE(&clone2->classifier(), &original.classifier());
  EXPECT_EQ(&clone2->corpus(), &original.corpus());
  EXPECT_EQ(&clone2->features(), &original.features());
  EXPECT_EQ(&clone2->similarities(), &original.similarities());
  EXPECT_EQ(&clone2->mediation(0), &original.mediation(0));
}

TEST(CloneAliasingTest, ReadersOnRetainedSnapshotWhileWriterMutates) {
  constexpr int kReaders = 3;
  constexpr int kWrites = 6;

  auto built = IntegrationSystem::Build(SmallCorpus());
  ASSERT_TRUE(built.ok()) << built.status();

  ServeOptions options;
  options.num_workers = 2;
  options.queue_depth = 64;
  options.queue_timeout_ms = 0;
  PaygoServer server(std::move(*built), options);
  ASSERT_TRUE(server.Start().ok());

  // Retain the generation-0 snapshot for the whole test: under structural
  // sharing the writer's clones alias its components, so readers scoring
  // against it race with the writer iff some mutator writes a shared
  // component in place.
  PaygoServer::Snapshot retained = server.snapshot();
  const ObservableState before = ObservableState::Capture(*retained);

  std::atomic<bool> writes_done{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&retained, &writes_done] {
      while (!writes_done.load(std::memory_order_acquire)) {
        auto scores =
            retained->ClassifyKeywordQuery("departure airline destination");
        EXPECT_TRUE(scores.ok()) << scores.status();
      }
    });
  }

  for (int i = 0; i < kWrites; ++i) {
    auto add = server.AddSchemaAsync(ExtraSchema(i), {"travel"});
    ASSERT_TRUE(add.get().ok());
    if (i == kWrites / 2) {
      FeedbackStore store;
      store.RecordImpression(0);
      store.RecordClick(0);
      ASSERT_TRUE(server.ApplyFeedbackAsync(store).get().ok());
    }
  }
  writes_done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  // The retained snapshot is byte-for-byte what it was before the writes,
  // and the published head has moved past it.
  before.ExpectEqual(ObservableState::Capture(*retained));
  EXPECT_EQ(retained->corpus().size(), before.corpus_size);
  EXPECT_EQ(server.snapshot()->corpus().size(),
            before.corpus_size + kWrites);
  server.Stop();
}

}  // namespace
}  // namespace paygo
