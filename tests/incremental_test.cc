#include "cluster/incremental.h"

#include <gtest/gtest.h>

#include "core/integration_system.h"

namespace paygo {
namespace {

/// A built two-domain system to add schemas into.
struct Fixture {
  std::unique_ptr<IntegrationSystem> sys;
  std::unique_ptr<IncrementalClusterer> inc;

  Fixture() {
    SchemaCorpus corpus;
    corpus.Add(Schema("t1", {"departure airport", "destination airport",
                             "airline"}),
               {"travel"});
    corpus.Add(Schema("t2", {"departure airport", "airline", "passengers"}),
               {"travel"});
    corpus.Add(Schema("b1", {"title", "authors", "journal"}), {"bib"});
    corpus.Add(Schema("b2", {"title", "authors", "publisher"}), {"bib"});
    SystemOptions opts;
    opts.hac.tau_c_sim = 0.25;
    opts.assignment.tau_c_sim = 0.25;
    opts.build_mediation = false;
    opts.build_classifier = false;
    sys = std::move(*IntegrationSystem::Build(std::move(corpus), opts));
    IncrementalOptions inc_opts;
    inc_opts.tau_c_sim = 0.25;
    inc = std::make_unique<IncrementalClusterer>(
        sys->tokenizer(), sys->vectorizer(), sys->features(), sys->domains(),
        inc_opts);
  }
};

TEST(IncrementalTest, SimilarSchemaJoinsExistingDomain) {
  Fixture fx;
  const std::uint32_t travel_domain = fx.sys->domains().DomainsOf(0)[0].first;
  const auto result = fx.inc->AddSchema(
      Schema("t3", {"departure airport", "destination airport",
                    "airline", "class"}));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->created_new_domain);
  ASSERT_FALSE(result->memberships.empty());
  EXPECT_EQ(result->memberships[0].first, travel_domain);
  // The model now places the newcomer in the travel domain.
  EXPECT_GT(fx.inc->model().Membership(result->schema_id, travel_domain),
            0.0);
}

TEST(IncrementalTest, UnrelatedSchemaOpensNewDomain) {
  Fixture fx;
  const std::size_t before = fx.inc->model().num_domains();
  const auto result = fx.inc->AddSchema(
      Schema("plants", {"botanical classification", "hardiness zone",
                        "bloom season"}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->created_new_domain);
  EXPECT_EQ(fx.inc->model().num_domains(), before + 1);
  EXPECT_DOUBLE_EQ(result->memberships[0].second, 1.0);
}

TEST(IncrementalTest, UnseenTermsTrackedAsDrift) {
  Fixture fx;
  const auto r1 = fx.inc->AddSchema(
      Schema("t3", {"departure airport", "airline"}));
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1->unseen_term_fraction, 0.0);
  const auto r2 = fx.inc->AddSchema(
      Schema("alien", {"zzzqqq wwwvvv", "kkkjjj"}));
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->unseen_term_fraction, 1.0);
  EXPECT_NEAR(fx.inc->AverageDrift(), 0.5, 1e-9);
}

TEST(IncrementalTest, RebuildRecommendedUnderHighDrift) {
  Fixture fx;
  EXPECT_FALSE(fx.inc->RebuildRecommended());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fx.inc
                    ->AddSchema(Schema("alien" + std::to_string(i),
                                       {"zzz" + std::to_string(i) + "qq",
                                        "vvv" + std::to_string(i) + "ww"}))
                    .ok());
  }
  EXPECT_TRUE(fx.inc->RebuildRecommended());
}

TEST(IncrementalTest, MembershipsSumToOne) {
  Fixture fx;
  IncrementalOptions loose;
  loose.tau_c_sim = 0.05;
  loose.theta = 0.9;
  IncrementalClusterer inc(fx.sys->tokenizer(), fx.sys->vectorizer(),
                           fx.sys->features(), fx.sys->domains(), loose);
  const auto result = inc.AddSchema(
      Schema("mixed", {"departure airport", "title", "authors"}));
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (const auto& [domain, prob] : result->memberships) total += prob;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(IncrementalTest, SequentialIdsContinueCorpusNumbering) {
  Fixture fx;
  const auto r1 = fx.inc->AddSchema(Schema("x", {"departure airport"}));
  const auto r2 = fx.inc->AddSchema(Schema("y", {"title", "authors"}));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->schema_id, 4u);
  EXPECT_EQ(r2->schema_id, 5u);
  EXPECT_EQ(fx.inc->features().size(), 6u);
  EXPECT_EQ(fx.inc->num_added(), 2u);
}

TEST(IncrementalTest, RejectsDegenerateSchemas) {
  Fixture fx;
  EXPECT_TRUE(fx.inc->AddSchema(Schema("empty", {}))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(fx.inc->AddSchema(Schema("stopwords", {"the", "of"}))
                  .status()
                  .IsInvalidArgument());
}

TEST(IncrementalTest, ModelRebuiltLazilyAndConsistently) {
  Fixture fx;
  const auto r = fx.inc->AddSchema(
      Schema("t3", {"departure airport", "airline", "destination airport"}));
  ASSERT_TRUE(r.ok());
  const DomainModel& m1 = fx.inc->model();
  const DomainModel& m2 = fx.inc->model();  // cached
  EXPECT_EQ(&m1, &m2);
  EXPECT_EQ(m1.num_schemas(), 5u);
  // Every schema's memberships still sum to 1 (or 0 for dropped ones).
  for (std::uint32_t i = 0; i < m1.num_schemas(); ++i) {
    const double total = m1.TotalMembership(i);
    EXPECT_TRUE(total == 0.0 || std::abs(total - 1.0) < 1e-9);
  }
}

}  // namespace
}  // namespace paygo
