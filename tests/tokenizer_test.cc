#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "text/stopwords.h"

namespace paygo {
namespace {

TEST(TokenizerTest, SplitsOnDelimiters) {
  Tokenizer tok;
  // The thesis's example: {Class ID, Day/Time, Professor Name, Subject} ->
  // {class, day, time, professor, name, subject} ("ID" is dropped: < 3
  // characters).
  EXPECT_EQ(tok.Tokenize("Class ID"), (std::vector<std::string>{"class"}));
  EXPECT_EQ(tok.Tokenize("Day/Time"),
            (std::vector<std::string>{"day", "time"}));
  EXPECT_EQ(tok.Tokenize("Professor Name"),
            (std::vector<std::string>{"professor", "name"}));
}

TEST(TokenizerTest, SplitsCamelCase) {
  Tokenizer tok;
  // The thesis's example: MaxNumberOfStudents -> Max, Number, Of, Students
  // ("of" is then removed as too short).
  EXPECT_EQ(tok.Tokenize("MaxNumberOfStudents"),
            (std::vector<std::string>{"max", "number", "students"}));
}

TEST(TokenizerTest, CamelCaseWithAcronym) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("HTMLPageTitle"),
            (std::vector<std::string>{"html", "page", "title"}));
}

TEST(TokenizerTest, CamelCaseDisabled) {
  TokenizerOptions opts;
  opts.split_camel_case = false;
  Tokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("MaxStudents"),
            (std::vector<std::string>{"maxstudents"}));
}

TEST(TokenizerTest, RemovesStopWordsAndShortTerms) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("Name of the Professor"),
            (std::vector<std::string>{"name", "professor"}));
  EXPECT_EQ(tok.Tokenize("ID NO XY"), (std::vector<std::string>{}));
}

TEST(TokenizerTest, DropsPureNumbers) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("2024 revenue"),
            (std::vector<std::string>{"revenue"}));
}

TEST(TokenizerTest, KeepsNumbersWhenConfigured) {
  TokenizerOptions opts;
  opts.drop_non_alphabetic = false;
  Tokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("2024 revenue"),
            (std::vector<std::string>{"2024", "revenue"}));
}

TEST(TokenizerTest, MinTermLengthConfigurable) {
  TokenizerOptions opts;
  opts.min_term_length = 2;
  opts.remove_stop_words = false;
  Tokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("ID of"), (std::vector<std::string>{"id", "of"}));
}

TEST(TokenizerTest, HandlesFormPunctuation) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("departing (mm/dd/yy)"),
            (std::vector<std::string>{"departing"}));
  EXPECT_EQ(tok.Tokenize("artist/composer"),
            (std::vector<std::string>{"artist", "composer"}));
}

TEST(TokenizerTest, TokenizeAllDeduplicatesAndSorts) {
  Tokenizer tok;
  const std::vector<std::string> terms =
      tok.TokenizeAll({"First Name", "Last Name", "Name"});
  EXPECT_EQ(terms, (std::vector<std::string>{"first", "last", "name"}));
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.TokenizeAll({}).empty());
  EXPECT_TRUE(tok.TokenizeAll({"", "  "}).empty());
}

TEST(StopWordsTest, CommonWordsAreStopWords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("with"));
  EXPECT_TRUE(IsStopWord("from"));
  EXPECT_FALSE(IsStopWord("departure"));
  EXPECT_FALSE(IsStopWord("type"));  // a real schema attribute in DDH cars
}

TEST(StopWordsTest, ListIsLowerCaseAndNonEmpty) {
  const auto& list = StopWordList();
  EXPECT_GT(list.size(), 50u);
  for (std::string_view w : list) {
    std::string lower(w);
    std::transform(lower.begin(), lower.end(), lower.begin(), ::tolower);
    EXPECT_EQ(std::string(w), lower);
    EXPECT_TRUE(IsStopWord(w));
  }
}

}  // namespace
}  // namespace paygo
