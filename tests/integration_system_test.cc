#include "core/integration_system.h"

#include <gtest/gtest.h>

#include "synth/tuple_generator.h"

namespace paygo {
namespace {

/// A tiny three-domain corpus (travel, bibliography, cars) with clear
/// vocabulary separation.
SchemaCorpus SmallCorpus() {
  SchemaCorpus corpus("small");
  corpus.Add(Schema("expedia",
                    {"departure airport", "destination airport",
                     "departing", "returning", "airline"}),
             {"travel"});
  corpus.Add(Schema("orbitz",
                    {"departure airport", "destination", "airline",
                     "passengers"}),
             {"travel"});
  corpus.Add(Schema("kayak",
                    {"departure", "destination airport", "airline", "class"}),
             {"travel"});
  corpus.Add(Schema("dblp", {"title", "authors", "year of publish",
                             "conference name"}),
             {"bibliography"});
  corpus.Add(Schema("citeseer", {"title", "author", "year", "journal"}),
             {"bibliography"});
  corpus.Add(Schema("pubmed", {"title", "authors", "journal", "abstract"}),
             {"bibliography"});
  corpus.Add(Schema("autotrader", {"make", "model", "year", "price"}),
             {"cars"});
  corpus.Add(Schema("cars.com", {"make", "model", "mileage", "price"}),
             {"cars"});
  return corpus;
}

SystemOptions SmallOptions() {
  SystemOptions opts;
  opts.hac.tau_c_sim = 0.25;
  opts.assignment.tau_c_sim = 0.25;
  opts.mediator.attr_freq_threshold = 0.1;
  return opts;
}

TEST(IntegrationSystemTest, BuildsAndClustersIntoThreeDomains) {
  const auto sys = IntegrationSystem::Build(SmallCorpus(), SmallOptions());
  ASSERT_TRUE(sys.ok()) << sys.status();
  const IntegrationSystem& s = **sys;
  EXPECT_EQ(s.corpus().size(), 8u);
  EXPECT_EQ(s.domains().num_domains(), 3u);
  // The three travel schemas share a domain.
  const auto& d0 = s.domains().DomainsOf(0);
  ASSERT_EQ(d0.size(), 1u);
  EXPECT_EQ(s.domains().DomainsOf(1)[0].first, d0[0].first);
  EXPECT_EQ(s.domains().DomainsOf(2)[0].first, d0[0].first);
  // Cars and bibliography land elsewhere.
  EXPECT_NE(s.domains().DomainsOf(3)[0].first, d0[0].first);
  EXPECT_NE(s.domains().DomainsOf(6)[0].first,
            s.domains().DomainsOf(3)[0].first);
}

TEST(IntegrationSystemTest, KeywordQueriesRouteToTheRightDomain) {
  const auto sys = IntegrationSystem::Build(SmallCorpus(), SmallOptions());
  ASSERT_TRUE(sys.ok());
  const IntegrationSystem& s = **sys;
  const std::uint32_t travel = s.domains().DomainsOf(0)[0].first;
  const std::uint32_t biblio = s.domains().DomainsOf(3)[0].first;
  const std::uint32_t cars = s.domains().DomainsOf(6)[0].first;

  const auto q1 = s.ClassifyKeywordQuery("departure Toronto destination Cairo");
  ASSERT_TRUE(q1.ok()) << q1.status();
  EXPECT_EQ((*q1)[0].domain, travel);

  const auto q2 = s.ClassifyKeywordQuery("books authored by Stephen King");
  ASSERT_TRUE(q2.ok());
  // "authored" matches "authors" via LCS similarity.
  EXPECT_EQ((*q2)[0].domain, biblio);

  const auto q3 = s.ClassifyKeywordQuery("honda civic make model mileage");
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ((*q3)[0].domain, cars);
}

TEST(IntegrationSystemTest, SuggestDomainsReturnsMediatedInterfaces) {
  const auto sys = IntegrationSystem::Build(SmallCorpus(), SmallOptions());
  ASSERT_TRUE(sys.ok());
  const auto suggestions = (*sys)->SuggestDomains("airline departure", 2);
  ASSERT_TRUE(suggestions.ok()) << suggestions.status();
  ASSERT_EQ(suggestions->size(), 2u);
  EXPECT_FALSE((*suggestions)[0].mediated_attributes.empty());
}

TEST(IntegrationSystemTest, StructuredQueryEndToEnd) {
  auto sys_result = IntegrationSystem::Build(SmallCorpus(), SmallOptions());
  ASSERT_TRUE(sys_result.ok());
  IntegrationSystem& s = **sys_result;
  const std::uint32_t cars = s.domains().DomainsOf(6)[0].first;

  // Attach the same car tuple to both car sources.
  ASSERT_TRUE(
      s.AttachTuples(6, {Tuple({"honda", "civic", "2004", "5000"})}).ok());
  ASSERT_TRUE(
      s.AttachTuples(7, {Tuple({"honda", "civic", "80000", "5000"})}).ok());

  const DomainMediation& med = s.mediation(cars);
  const int make_attr = med.mediated.FindByMember("make");
  ASSERT_GE(make_attr, 0);

  StructuredQuery q;
  q.predicates.push_back({static_cast<std::size_t>(make_attr), "honda"});
  const auto result = s.AnswerStructuredQuery(cars, q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->size(), 1u);
  for (const RankedTuple& t : *result) {
    EXPECT_GT(t.probability, 0.0);
    EXPECT_LE(t.probability, 1.0 + 1e-12);
  }
}

TEST(IntegrationSystemTest, SyntheticTuplesFlowThroughTheEngine) {
  auto sys_result = IntegrationSystem::Build(SmallCorpus(), SmallOptions());
  ASSERT_TRUE(sys_result.ok());
  IntegrationSystem& s = **sys_result;
  const std::uint32_t travel = s.domains().DomainsOf(0)[0].first;
  for (std::uint32_t i : {0u, 1u, 2u}) {
    DataSource tmp(i, s.corpus().schema(i));
    FillWithSyntheticTuples(&tmp);
    ASSERT_TRUE(s.AttachTuples(i, tmp.tuples()).ok());
  }
  const auto result = s.AnswerStructuredQuery(travel, {});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 0u);
  // Probabilities sorted descending.
  for (std::size_t i = 1; i < result->size(); ++i) {
    EXPECT_GE((*result)[i - 1].probability, (*result)[i].probability);
  }
}

TEST(IntegrationSystemTest, BuildWithoutClassifierRejectsQueries) {
  SystemOptions opts = SmallOptions();
  opts.build_classifier = false;
  const auto sys = IntegrationSystem::Build(SmallCorpus(), opts);
  ASSERT_TRUE(sys.ok());
  EXPECT_FALSE((*sys)->has_classifier());
  EXPECT_TRUE((*sys)->ClassifyKeywordQuery("departure")
                  .status()
                  .IsFailedPrecondition());
}

TEST(IntegrationSystemTest, BuildWithoutMediationRejectsStructuredQueries) {
  SystemOptions opts = SmallOptions();
  opts.build_mediation = false;
  const auto sys = IntegrationSystem::Build(SmallCorpus(), opts);
  ASSERT_TRUE(sys.ok());
  EXPECT_FALSE((*sys)->has_mediation());
  EXPECT_TRUE((*sys)->AnswerStructuredQuery(0, {})
                  .status()
                  .IsFailedPrecondition());
}

TEST(IntegrationSystemTest, EmptyCorpusRejected) {
  EXPECT_TRUE(IntegrationSystem::Build(SchemaCorpus(), {})
                  .status()
                  .IsInvalidArgument());
}

TEST(IntegrationSystemTest, AttachTuplesValidatesSchemaId) {
  auto sys = IntegrationSystem::Build(SmallCorpus(), SmallOptions());
  ASSERT_TRUE(sys.ok());
  EXPECT_TRUE((*sys)->AttachTuples(99, {}).IsOutOfRange());
  EXPECT_TRUE(
      (*sys)->AttachTuples(0, {Tuple({"wrong width"})}).IsInvalidArgument());
}

TEST(IntegrationSystemTest, DescribeDomainMentionsMembers) {
  const auto sys = IntegrationSystem::Build(SmallCorpus(), SmallOptions());
  ASSERT_TRUE(sys.ok());
  const std::uint32_t travel = (*sys)->domains().DomainsOf(0)[0].first;
  const std::string desc = (*sys)->DescribeDomain(travel);
  EXPECT_NE(desc.find("expedia"), std::string::npos);
  EXPECT_NE(desc.find("mediated schema"), std::string::npos);
}

}  // namespace
}  // namespace paygo
