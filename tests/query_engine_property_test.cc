#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "core/integration_system.h"
#include "integrate/query_engine.h"
#include "synth/tuple_generator.h"
#include "synth/web_generator.h"
#include "util/random.h"

namespace paygo {
namespace {

/// Properties of the Section 4.4 runtime that must hold for ANY corpus,
/// mediation and data: probabilities in (0, 1], descending order, and
/// monotonicity of the noisy-or consolidation.

class QueryEnginePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryEnginePropertyTest, ProbabilitiesBoundedAndSorted) {
  Rng rng(500 + GetParam());
  // A random slice of the DW corpus with synthetic tuples.
  SchemaCorpus dw = MakeDwCorpus();
  SystemOptions opts;
  opts.hac.tau_c_sim = 0.2;
  opts.assignment.tau_c_sim = 0.2;
  opts.assignment.theta = 0.3;  // some fractional memberships
  opts.build_classifier = false;
  auto built = IntegrationSystem::Build(dw, opts);
  ASSERT_TRUE(built.ok());
  IntegrationSystem& sys = **built;
  for (std::uint32_t i = 0; i < sys.corpus().size(); ++i) {
    DataSource staging(i, sys.corpus().schema(i));
    TupleGeneratorOptions tg;
    tg.tuples_per_source = 6;
    tg.values_per_attribute = 3;  // force duplicates -> noisy-or paths
    tg.seed = 100 + GetParam();
    FillWithSyntheticTuples(&staging, tg);
    ASSERT_TRUE(sys.AttachTuples(i, staging.tuples()).ok());
  }

  // Query several random domains with empty and single-predicate queries.
  for (int probe = 0; probe < 10; ++probe) {
    const std::uint32_t domain = static_cast<std::uint32_t>(
        rng.NextBelow(sys.domains().num_domains()));
    const DomainMediation& med = sys.mediation(domain);
    StructuredQuery q;
    if (med.mediated.size() > 0 && rng.NextBernoulli(0.5)) {
      const std::size_t attr = rng.NextBelow(med.mediated.size());
      q.predicates.push_back(
          {attr, SyntheticValue(med.mediated.attributes[attr].members[0],
                                rng.NextBelow(3))});
    }
    const auto result = sys.AnswerStructuredQuery(domain, q);
    ASSERT_TRUE(result.ok()) << result.status();
    double prev = 2.0;
    for (const RankedTuple& t : *result) {
      EXPECT_GT(t.probability, 0.0);
      EXPECT_LE(t.probability, 1.0 + 1e-12);
      EXPECT_LE(t.probability, prev + 1e-12);  // descending
      EXPECT_FALSE(t.sources.empty());
      EXPECT_EQ(t.tuple.values.size(), med.mediated.size());
      prev = t.probability;
    }
    // Predicates only filter: the filtered result set is a subset of the
    // unfiltered one (by tuple values).
    if (!q.predicates.empty()) {
      const auto all = sys.AnswerStructuredQuery(domain, {});
      ASSERT_TRUE(all.ok());
      for (const RankedTuple& t : *result) {
        bool found = false;
        for (const RankedTuple& u : *all) {
          if (u.tuple == t.tuple) {
            found = true;
            // Consolidated probability must agree regardless of the
            // predicate (same contributing mappings).
            EXPECT_NEAR(u.probability, t.probability, 1e-9);
            break;
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryEnginePropertyTest,
                         ::testing::Range(0, 5));

/// Fuzz the classify read path by randomly routing queries through the
/// batch API: random keyword queries (real vocabulary, junk terms, empty
/// and mixed), chopped into random-size batches, must rank EXACTLY as the
/// single-query path — same domains, bitwise-equal log posteriors. Every
/// assertion carries the seed so a failure is reproducible verbatim.
class BatchRoutingFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchRoutingFuzzTest, RandomBatchRoutingMatchesSingleBitwise) {
  const unsigned seed = 9000 + static_cast<unsigned>(GetParam());
  SCOPED_TRACE("fuzz seed " + std::to_string(seed) +
               " (re-run: BatchRoutingFuzzTest param " +
               std::to_string(GetParam()) + ")");
  Rng rng(seed);

  const SchemaCorpus dw = MakeDwCorpus();
  auto built = IntegrationSystem::Build(dw);
  ASSERT_TRUE(built.ok()) << built.status();
  const IntegrationSystem& sys = **built;

  // Random query mix: attribute terms from random schemas, out-of-
  // vocabulary junk, and the occasional empty query.
  std::vector<std::string> queries;
  const std::size_t num_queries = 40 + rng.NextBelow(60);
  for (std::size_t i = 0; i < num_queries; ++i) {
    std::string q;
    const std::size_t terms = rng.NextBelow(6);  // 0 terms = empty query
    for (std::size_t t = 0; t < terms; ++t) {
      if (!q.empty()) q += ' ';
      if (rng.NextBernoulli(0.15)) {
        q += "zzjunk" + std::to_string(rng.NextBelow(1000));
      } else {
        const Schema& schema = dw.schema(rng.NextBelow(dw.size()));
        q += schema.attributes[rng.NextBelow(schema.attributes.size())];
      }
    }
    queries.push_back(std::move(q));
  }

  // Golden single-path rankings.
  std::vector<std::vector<DomainScore>> golden;
  golden.reserve(queries.size());
  for (const std::string& q : queries) {
    auto scores = sys.ClassifyKeywordQuery(q);
    ASSERT_TRUE(scores.ok()) << scores.status();
    golden.push_back(std::move(*scores));
  }

  // Random batch partition: each slice goes through the batch API (slices
  // of size 1 included — the degenerate batch).
  std::size_t start = 0;
  while (start < queries.size()) {
    const std::size_t len =
        1 + rng.NextBelow(std::min<std::size_t>(17, queries.size() - start));
    auto batched = sys.ClassifyKeywordQueryBatch(
        std::span<const std::string>(queries.data() + start, len));
    ASSERT_TRUE(batched.ok()) << batched.status();
    ASSERT_EQ(batched->size(), len);
    for (std::size_t b = 0; b < len; ++b) {
      const std::vector<DomainScore>& got = (*batched)[b];
      const std::vector<DomainScore>& want = golden[start + b];
      ASSERT_EQ(got.size(), want.size())
          << "query \"" << queries[start + b] << "\"";
      for (std::size_t k = 0; k < got.size(); ++k) {
        ASSERT_EQ(got[k].domain, want[k].domain)
            << "query \"" << queries[start + b] << "\" rank " << k;
        ASSERT_EQ(got[k].log_posterior, want[k].log_posterior)
            << "query \"" << queries[start + b] << "\" rank " << k;
      }
    }
    start += len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchRoutingFuzzTest, ::testing::Range(0, 6));

TEST(MediatorDeterminismTest, SameInputsSameMediation) {
  const SchemaCorpus dw = MakeDwCorpus();
  Tokenizer tok;
  std::vector<std::pair<std::uint32_t, double>> members;
  for (std::uint32_t i = 0; i < 12; ++i) members.emplace_back(i, 1.0);
  const auto a = Mediator::BuildForDomain(dw, tok, members, {});
  const auto b = Mediator::BuildForDomain(dw, tok, members, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->mediated.size(), b->mediated.size());
  for (std::size_t m = 0; m < a->mediated.size(); ++m) {
    EXPECT_EQ(a->mediated.attributes[m].name, b->mediated.attributes[m].name);
    EXPECT_EQ(a->mediated.attributes[m].members,
              b->mediated.attributes[m].members);
  }
  ASSERT_EQ(a->mappings.size(), b->mappings.size());
  for (std::size_t m = 0; m < a->mappings.size(); ++m) {
    ASSERT_EQ(a->mappings[m].alternatives.size(),
              b->mappings[m].alternatives.size());
    for (std::size_t k = 0; k < a->mappings[m].alternatives.size(); ++k) {
      EXPECT_EQ(a->mappings[m].alternatives[k].target,
                b->mappings[m].alternatives[k].target);
      EXPECT_DOUBLE_EQ(a->mappings[m].alternatives[k].probability,
                       b->mappings[m].alternatives[k].probability);
    }
  }
}

}  // namespace
}  // namespace paygo
