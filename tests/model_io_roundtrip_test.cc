// Snapshot v2 round-trip: serialize -> parse must reproduce the system
// bitwise — lexicon, feature vectors, similarity matrix, memberships,
// classifier priors and conditionals — including after the corpus grew
// through the delta write path's AddSchema, where the lexicon is frozen
// and v1's rebuild-from-corpus restore diverges.

#include "persist/model_io.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "schema/corpus_io.h"
#include "synth/web_generator.h"

namespace paygo {
namespace {

SystemOptions TestOptions() {
  SystemOptions options;
  options.hac.tau_c_sim = 0.25;
  options.assignment.tau_c_sim = 0.25;
  return options;
}

/// Schemas a live deployment might discover after Build: overlapping with
/// the flight domain but carrying terms the frozen lexicon has never seen.
std::vector<Schema> ChurnSchemas() {
  return {
      Schema("churn-flights", {"departure city", "arrival city",
                               "layover aerodrome", "frequent flyer tier"}),
      Schema("churn-hotels", {"hotel name", "check in", "check out",
                              "pillow menu preference"}),
      Schema("churn-novel", {"zeppelin mooring mast", "dirigible ballast",
                             "aerostat envelope"}),
  };
}

/// Builds the dw corpus system and mutates it through AddSchema so the
/// corpus no longer matches the (frozen) lexicon.
std::unique_ptr<IntegrationSystem> BuildChurnedSystem() {
  auto built = IntegrationSystem::Build(MakeDwCorpus(), TestOptions());
  EXPECT_TRUE(built.ok()) << built.status();
  std::unique_ptr<IntegrationSystem> sys = std::move(*built);
  for (Schema& s : ChurnSchemas()) {
    auto added = sys->AddSchema(std::move(s), {});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return sys;
}

void ExpectBitwiseEqual(const IntegrationSystem& a,
                        const IntegrationSystem& b) {
  // Corpus.
  ASSERT_EQ(a.corpus().size(), b.corpus().size());
  for (std::size_t i = 0; i < a.corpus().size(); ++i) {
    EXPECT_EQ(a.corpus().schema(i), b.corpus().schema(i)) << "schema " << i;
  }
  // Lexicon: the frozen feature space must survive verbatim.
  ASSERT_EQ(a.lexicon().dim(), b.lexicon().dim());
  EXPECT_EQ(a.lexicon().terms(), b.lexicon().terms());
  // Feature vectors, bit for bit.
  ASSERT_EQ(a.features().size(), b.features().size());
  for (std::size_t i = 0; i < a.features().size(); ++i) {
    EXPECT_TRUE(a.features()[i] == b.features()[i]) << "features " << i;
  }
  // Similarity matrix: Jaccard is a pure function of the features, so
  // identical features must give identical (float) similarities.
  ASSERT_EQ(a.similarities().size(), b.similarities().size());
  for (std::size_t i = 0; i < a.similarities().size(); ++i) {
    for (std::size_t j = 0; j < a.similarities().size(); ++j) {
      EXPECT_EQ(a.similarities().At(i, j), b.similarities().At(i, j))
          << "sims(" << i << "," << j << ")";
    }
  }
  // Domain model: clusters and membership probabilities.
  ASSERT_EQ(a.domains().num_domains(), b.domains().num_domains());
  ASSERT_EQ(a.domains().num_schemas(), b.domains().num_schemas());
  for (std::uint32_t r = 0; r < a.domains().num_domains(); ++r) {
    EXPECT_EQ(a.domains().Cluster(r), b.domains().Cluster(r)) << "cluster "
                                                              << r;
  }
  for (std::uint32_t i = 0; i < a.domains().num_schemas(); ++i) {
    for (std::uint32_t r = 0; r < a.domains().num_domains(); ++r) {
      EXPECT_DOUBLE_EQ(a.domains().Membership(i, r),
                       b.domains().Membership(i, r))
          << "membership(" << i << "," << r << ")";
    }
  }
  // Classifier priors and conditionals (%.17g round-trips doubles exactly).
  ASSERT_TRUE(a.has_classifier());
  ASSERT_TRUE(b.has_classifier());
  const auto& ca = a.classifier().conditionals();
  const auto& cb = b.classifier().conditionals();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t r = 0; r < ca.size(); ++r) {
    EXPECT_DOUBLE_EQ(ca[r].prior, cb[r].prior) << "prior " << r;
    ASSERT_EQ(ca[r].q1.size(), cb[r].q1.size());
    for (std::size_t j = 0; j < ca[r].q1.size(); ++j) {
      EXPECT_DOUBLE_EQ(ca[r].q1[j], cb[r].q1[j])
          << "q1(" << r << "," << j << ")";
    }
  }
}

TEST(ModelIoRoundTripTest, V2RoundTripBitExactOnFreshBuild) {
  auto built = IntegrationSystem::Build(MakeDwCorpus(), TestOptions());
  ASSERT_TRUE(built.ok()) << built.status();
  auto text = SerializeSnapshot(**built);
  ASSERT_TRUE(text.ok()) << text.status();
  auto restored = ParseSnapshot(*text, TestOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectBitwiseEqual(**built, **restored);
}

TEST(ModelIoRoundTripTest, V2RoundTripBitExactAfterAddSchemaChurn) {
  std::unique_ptr<IntegrationSystem> sys = BuildChurnedSystem();
  auto text = SerializeSnapshot(*sys);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(text->rfind("paygo-snapshot v2", 0), 0u);
  auto restored = ParseSnapshot(*text, TestOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectBitwiseEqual(*sys, **restored);

  // Ranked classification is identical, scores and all.
  for (const char* q : {"departure airline", "hotel check in",
                        "zeppelin mooring", "salary employer"}) {
    const auto a = sys->ClassifyKeywordQuery(q);
    const auto b = (*restored)->ClassifyKeywordQuery(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size()) << q;
    for (std::size_t k = 0; k < a->size(); ++k) {
      EXPECT_EQ((*a)[k].domain, (*b)[k].domain) << q;
      EXPECT_DOUBLE_EQ((*a)[k].log_posterior, (*b)[k].log_posterior) << q;
    }
  }
}

TEST(ModelIoRoundTripTest, V2SurvivesASecondGeneration) {
  // serialize -> parse -> serialize must be byte-stable (a replica that
  // re-serializes its restored state ships the same bytes).
  std::unique_ptr<IntegrationSystem> sys = BuildChurnedSystem();
  auto text1 = SerializeSnapshot(*sys);
  ASSERT_TRUE(text1.ok()) << text1.status();
  auto restored = ParseSnapshot(*text1, TestOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  auto text2 = SerializeSnapshot(**restored);
  ASSERT_TRUE(text2.ok()) << text2.status();
  EXPECT_EQ(*text1, *text2);
}

TEST(ModelIoRoundTripTest, V1SnapshotStillLoads) {
  auto built = IntegrationSystem::Build(MakeDwCorpus(), TestOptions());
  ASSERT_TRUE(built.ok()) << built.status();
  const IntegrationSystem& sys = **built;
  // A v1 snapshot has no lexicon/features sections; the legacy rebuild
  // path re-derives both from the corpus, which is exact for a system
  // that never mutated after Build.
  std::string v1 = "paygo-snapshot v1\n";
  v1 += "=== corpus ===\n" + SerializeCorpus(sys.corpus());
  v1 += "=== model ===\n" + SerializeDomainModel(sys.domains());
  v1 += "=== classifier ===\n" +
        SerializeConditionals(sys.classifier().conditionals());
  v1 += "=== end ===\n";
  auto restored = ParseSnapshot(v1, TestOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectBitwiseEqual(sys, **restored);
}

TEST(ModelIoRoundTripTest, V1FormatCannotRepresentChurnedSystem) {
  // The bug v2 exists to fix: after AddSchema introduced out-of-lexicon
  // terms, a v1-style restore re-derives a WIDER lexicon from the grown
  // corpus, and the persisted conditionals no longer fit its dimension.
  std::unique_ptr<IntegrationSystem> sys = BuildChurnedSystem();
  std::string v1 = "paygo-snapshot v1\n";
  v1 += "=== corpus ===\n" + SerializeCorpus(sys->corpus());
  v1 += "=== model ===\n" + SerializeDomainModel(sys->domains());
  v1 += "=== classifier ===\n" +
        SerializeConditionals(sys->classifier().conditionals());
  v1 += "=== end ===\n";
  const auto restored = ParseSnapshot(v1, TestOptions());
  EXPECT_TRUE(restored.status().IsInvalidArgument()) << restored.status();
}

TEST(ModelIoRoundTripTest, RejectsMalformedV2Sections) {
  std::unique_ptr<IntegrationSystem> sys = BuildChurnedSystem();
  auto text = SerializeSnapshot(*sys);
  ASSERT_TRUE(text.ok());
  // Truncate the features section: dim check must catch the mismatch.
  const std::size_t features_at = text->find("=== features ===");
  ASSERT_NE(features_at, std::string::npos);
  std::string broken = text->substr(0, features_at);
  broken += "=== features ===\ncounts 1 3\nf 0 1 0\n";
  broken += text->substr(text->find("=== model ==="));
  EXPECT_TRUE(ParseSnapshot(broken, TestOptions())
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paygo
