#include "util/string_util.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123!"), "hello 123!");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t x \n"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nospace"), "nospace");
}

TEST(StringUtilTest, SplitAnyDropsEmptyPieces) {
  EXPECT_EQ(SplitAny("a/b__c", "/_"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAny("///", "/"), (std::vector<std::string>{}));
  EXPECT_EQ(SplitAny("plain", "/"), (std::vector<std::string>{"plain"}));
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string s = "alpha;beta;gamma";
  EXPECT_EQ(Join(Split(s, ';'), ";"), s);
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("schema foo", "schema "));
  EXPECT_FALSE(StartsWith("sch", "schema"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringUtilTest, IsAlphaAscii) {
  EXPECT_TRUE(IsAlphaAscii("hello"));
  EXPECT_FALSE(IsAlphaAscii("hello1"));
  EXPECT_FALSE(IsAlphaAscii(""));
  EXPECT_FALSE(IsAlphaAscii("a b"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace paygo
