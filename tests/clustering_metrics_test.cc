#include "eval/clustering_metrics.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

SchemaCorpus LabeledCorpus(const std::vector<std::vector<std::string>>& labels) {
  SchemaCorpus corpus;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    corpus.Add(Schema("s" + std::to_string(i), {"a"}), labels[i]);
  }
  return corpus;
}

DomainModel HardModel(std::vector<std::vector<std::uint32_t>> clusters) {
  std::size_t n = 0;
  for (const auto& c : clusters) n += c.size();
  std::vector<std::vector<std::pair<std::uint32_t, double>>> sd(n);
  for (std::uint32_t r = 0; r < clusters.size(); ++r) {
    for (std::uint32_t i : clusters[r]) sd[i] = {{r, 1.0}};
  }
  return DomainModel::Build(std::move(clusters), std::move(sd));
}

TEST(ClusteringMetricsTest, PerfectClusteringScoresOne) {
  const SchemaCorpus corpus = LabeledCorpus(
      {{"cars"}, {"cars"}, {"cars"}, {"movies"}, {"movies"}, {"movies"}});
  const DomainModel model = HardModel({{0, 1, 2}, {3, 4, 5}});
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  EXPECT_DOUBLE_EQ(eval.avg_precision, 1.0);
  EXPECT_DOUBLE_EQ(eval.avg_recall, 1.0);
  EXPECT_DOUBLE_EQ(eval.fragmentation, 1.0);
  EXPECT_DOUBLE_EQ(eval.frac_non_homogeneous, 0.0);
  EXPECT_DOUBLE_EQ(eval.frac_unclustered, 0.0);
  EXPECT_EQ(eval.dominant_labels[0], (std::vector<std::string>{"cars"}));
  EXPECT_EQ(eval.dominant_labels[1], (std::vector<std::string>{"movies"}));
}

TEST(ClusteringMetricsTest, ImpurityLowersPrecision) {
  // Domain 0 has 3 cars + 1 movies schema; domain 1 has 2 movies.
  const SchemaCorpus corpus = LabeledCorpus(
      {{"cars"}, {"cars"}, {"cars"}, {"movies"}, {"movies"}, {"movies"}});
  const DomainModel model = HardModel({{0, 1, 2, 3}, {4, 5}});
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  // Domain 0 precision 3/4, domain 1 precision 1 -> avg 0.875.
  EXPECT_NEAR(eval.avg_precision, (0.75 + 1.0) / 2, 1e-9);
  // cars recall 1; movies: 2 of 3 memberships land in movies-dominated
  // domains -> 2/3. avg = (1 + 2/3)/2.
  EXPECT_NEAR(eval.avg_recall, (1.0 + 2.0 / 3.0) / 2, 1e-9);
}

TEST(ClusteringMetricsTest, FragmentationCountsSplitLabels) {
  // "cars" dominates two domains.
  const SchemaCorpus corpus = LabeledCorpus(
      {{"cars"}, {"cars"}, {"cars"}, {"cars"}, {"movies"}, {"movies"}});
  const DomainModel model = HardModel({{0, 1}, {2, 3}, {4, 5}});
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  // cars -> 2 domains, movies -> 1: avg (2+1)/2 = 1.5.
  EXPECT_NEAR(eval.fragmentation, 1.5, 1e-9);
  // Fragmentation costs recall: each cars membership is a TP (both
  // domains are cars-dominated), so recall stays 1 here.
  EXPECT_NEAR(eval.avg_recall, 1.0, 1e-9);
}

TEST(ClusteringMetricsTest, NonHomogeneousDomainDetected) {
  // Domain 0: two cars, two movies, one hotels -> no absolute majority.
  const SchemaCorpus corpus = LabeledCorpus(
      {{"cars"}, {"cars"}, {"movies"}, {"movies"}, {"hotels"}});
  const DomainModel model = HardModel({{0, 1, 2, 3, 4}});
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  EXPECT_EQ(eval.num_non_homogeneous_domains, 1u);
  EXPECT_TRUE(eval.dominant_labels[0].empty());
  EXPECT_DOUBLE_EQ(eval.frac_non_homogeneous, 1.0);
  // All memberships are false negatives -> recall 0 for every label.
  EXPECT_DOUBLE_EQ(eval.avg_recall, 0.0);
  // No homogeneous domain -> precision averages over nothing.
  EXPECT_DOUBLE_EQ(eval.avg_precision, 0.0);
}

TEST(ClusteringMetricsTest, ExactMajorityIsHomogeneous) {
  // 2 of 4 memberships -> exactly half: the thesis requires the dominant
  // label to have an absolute majority only when strictly below half, so
  // >= 0.5 counts as homogeneous.
  const SchemaCorpus corpus =
      LabeledCorpus({{"cars"}, {"cars"}, {"movies"}, {"hotels"}});
  const DomainModel model = HardModel({{0, 1, 2, 3}});
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  EXPECT_EQ(eval.num_non_homogeneous_domains, 0u);
  EXPECT_EQ(eval.dominant_labels[0], (std::vector<std::string>{"cars"}));
}

TEST(ClusteringMetricsTest, SingletonDomainsAreUnclustered) {
  const SchemaCorpus corpus =
      LabeledCorpus({{"cars"}, {"cars"}, {"movies"}, {"hotels"}});
  const DomainModel model = HardModel({{0, 1}, {2}, {3}});
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  EXPECT_EQ(eval.num_singleton_domains, 2u);
  EXPECT_NEAR(eval.frac_unclustered, 0.5, 1e-9);
  // Singletons excluded: precision/recall come from the cars domain only.
  EXPECT_DOUBLE_EQ(eval.avg_precision, 1.0);
  EXPECT_DOUBLE_EQ(eval.avg_recall, 1.0);
}

TEST(ClusteringMetricsTest, ProbabilisticMembershipsWeightCounts) {
  // Schema 2 belongs 0.5/0.5 to both domains; its label is "cars".
  const SchemaCorpus corpus =
      LabeledCorpus({{"cars"}, {"cars"}, {"cars"}, {"movies"}, {"movies"}});
  std::vector<std::vector<std::pair<std::uint32_t, double>>> sd = {
      {{0, 1.0}}, {{0, 1.0}}, {{0, 0.5}, {1, 0.5}}, {{1, 1.0}}, {{1, 1.0}}};
  const DomainModel model =
      DomainModel::Build({{0, 1, 2}, {3, 4}}, std::move(sd));
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  // Domain 0: TP 2.5 / 2.5 -> precision 1. Domain 1: movies weight 2,
  // cars weight 0.5 -> dominant movies, precision 2/2.5 = 0.8.
  EXPECT_NEAR(eval.avg_precision, (1.0 + 0.8) / 2, 1e-9);
  // cars recall: TP 2.5 of total 3 memberships -> 2.5/3; movies: 1.
  EXPECT_NEAR(eval.avg_recall, (2.5 / 3.0 + 1.0) / 2, 1e-9);
}

TEST(ClusteringMetricsTest, TiedDominantLabelsBothCount) {
  const SchemaCorpus corpus =
      LabeledCorpus({{"cars"}, {"movies"}, {"cars"}, {"movies"}});
  const DomainModel model = HardModel({{0, 1, 2, 3}});
  const std::vector<std::string> dominant =
      DominantLabels(model, 0, corpus);
  EXPECT_EQ(dominant, (std::vector<std::string>{"cars", "movies"}));
}

TEST(ClusteringMetricsTest, MultiLabelSchemaCountsAsTruePositive) {
  // A schema labeled {schools, people} in a schools-dominated domain is a
  // true positive (B(S) intersects B(D)).
  const SchemaCorpus corpus = LabeledCorpus(
      {{"schools"}, {"schools"}, {"schools", "people"}});
  const DomainModel model = HardModel({{0, 1, 2}});
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  EXPECT_DOUBLE_EQ(eval.avg_precision, 1.0);
}

}  // namespace
}  // namespace paygo
