#include "schema/feature_vector.h"

#include <gtest/gtest.h>

#include "text/term_similarity.h"
#include "util/random.h"

namespace paygo {
namespace {

TEST(FeatureVectorTest, ExactTermsSetTheirOwnBits) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s1", {"make", "model"}), {});
  corpus.Add(Schema("s2", {"title", "director"}), {});
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lex);
  const auto features = vec.VectorizeCorpus();
  ASSERT_EQ(features.size(), 2u);
  EXPECT_TRUE(features[0].Test(*lex.IndexOf("make")));
  EXPECT_TRUE(features[0].Test(*lex.IndexOf("model")));
  EXPECT_FALSE(features[0].Test(*lex.IndexOf("title")));
  EXPECT_TRUE(features[1].Test(*lex.IndexOf("title")));
}

TEST(FeatureVectorTest, SimilarTermsAlsoSetBits) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s1", {"author"}), {});
  corpus.Add(Schema("s2", {"authors"}), {});
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lex);  // tau_t_sim = 0.8
  const auto features = vec.VectorizeCorpus();
  // t_sim(author, authors) = 12/13 >= 0.8, so each schema sets BOTH bits
  // and the two feature vectors are identical.
  EXPECT_TRUE(features[0].Test(*lex.IndexOf("authors")));
  EXPECT_TRUE(features[1].Test(*lex.IndexOf("author")));
  EXPECT_TRUE(features[0] == features[1]);
}

TEST(FeatureVectorTest, ThresholdOneKeepsOnlyExactMatches) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s1", {"author"}), {});
  corpus.Add(Schema("s2", {"authors"}), {});
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  FeatureVectorizerOptions opts;
  opts.tau_t_sim = 1.0;
  FeatureVectorizer vec(lex, opts);
  const auto features = vec.VectorizeCorpus();
  EXPECT_FALSE(features[0].Test(*lex.IndexOf("authors")));
  EXPECT_TRUE(features[0].Test(*lex.IndexOf("author")));
}

TEST(FeatureVectorTest, ExternalTermsMatchLexicon) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s1", {"departure airport", "destination airport"}), {});
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lex);
  // Query keyword "departures" (not in the lexicon) should still set the
  // "departure" bit.
  const DynamicBitset f = vec.VectorizeExternalTerms({"departures"});
  EXPECT_TRUE(f.Test(*lex.IndexOf("departure")));
  EXPECT_FALSE(f.Test(*lex.IndexOf("destination")));
}

TEST(FeatureVectorTest, UnknownExternalTermsSetNothing) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s1", {"make", "model"}), {});
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lex);
  EXPECT_TRUE(vec.VectorizeExternalTerms({"zzzzz"}).None());
  EXPECT_TRUE(vec.VectorizeExternalTerms({}).None());
}

/// Property: the vectorizer agrees with Algorithm 1's literal definition
/// F_i[j] = [max over t in T_i of t_sim(L_j, t) >= tau] on a randomized
/// corpus, for several thresholds and both similarity kinds.
struct Alg1Param {
  double tau;
  TermSimilarityKind kind;
};

class FeatureVectorPropertyTest : public ::testing::TestWithParam<Alg1Param> {
};

TEST_P(FeatureVectorPropertyTest, AgreesWithLiteralAlgorithm1) {
  const Alg1Param param = GetParam();
  Rng rng(42);
  const std::vector<std::string> words = {
      "title",   "titles",  "author", "authors",   "year",     "years",
      "price",   "prices",  "maker",  "making",    "departure",
      "departures", "rating", "ratings", "model", "models"};
  SchemaCorpus corpus;
  for (int i = 0; i < 12; ++i) {
    std::vector<std::string> attrs;
    const std::size_t n = 2 + rng.NextBelow(4);
    for (std::size_t k = 0; k < n; ++k) {
      attrs.push_back(words[rng.NextBelow(words.size())]);
    }
    corpus.Add(Schema("s" + std::to_string(i), attrs), {});
  }
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  FeatureVectorizerOptions opts;
  opts.tau_t_sim = param.tau;
  opts.similarity_kind = param.kind;
  FeatureVectorizer vec(lex, opts);
  const auto features = vec.VectorizeCorpus();

  TermSimilarity sim(param.kind);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::vector<std::string> ti =
        tok.TokenizeAll(corpus.schema(i).attributes);
    for (std::size_t j = 0; j < lex.dim(); ++j) {
      double best = 0.0;
      for (const std::string& t : ti) {
        best = std::max(best, sim.Compute(lex.term(j), t));
      }
      EXPECT_EQ(features[i].Test(j), best >= param.tau)
          << "schema " << i << " term " << lex.term(j);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TauAndKind, FeatureVectorPropertyTest,
    ::testing::Values(Alg1Param{0.8, TermSimilarityKind::kLcs},
                      Alg1Param{0.9, TermSimilarityKind::kLcs},
                      Alg1Param{0.7, TermSimilarityKind::kLcs},
                      Alg1Param{1.0, TermSimilarityKind::kExact},
                      Alg1Param{0.5, TermSimilarityKind::kStem}));

}  // namespace
}  // namespace paygo
