#include "integrate/query_engine.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

/// A hand-built mediation over two single-attribute sources so the
/// consolidation arithmetic of Section 4.4 can be verified exactly.
struct Fixture {
  SchemaCorpus corpus;
  DomainMediation mediation;
  std::vector<std::unique_ptr<DataSource>> sources;

  std::vector<const DataSource*> SourcePtrs() const {
    std::vector<const DataSource*> out;
    for (const auto& s : sources) out.push_back(s.get());
    return out;
  }
};

Fixture MakeTwoSourceFixture(double membership0, double membership1) {
  Fixture fx;
  fx.corpus.Add(Schema("src0", {"title"}), {});
  fx.corpus.Add(Schema("src1", {"movie title"}), {});

  fx.mediation.mediated.attributes.push_back(
      {"title", {"movie title", "title"}, 2.0});
  fx.mediation.members = {{0, membership0}, {1, membership1}};

  ProbabilisticMapping pm0;
  pm0.schema_id = 0;
  pm0.alternatives = {{{0}, 1.0}};
  ProbabilisticMapping pm1;
  pm1.schema_id = 1;
  pm1.alternatives = {{{0}, 1.0}};
  fx.mediation.mappings = {pm0, pm1};

  fx.sources.push_back(
      std::make_unique<DataSource>(0, fx.corpus.schema(0)));
  fx.sources.push_back(
      std::make_unique<DataSource>(1, fx.corpus.schema(1)));
  return fx;
}

TEST(DataSourceTest, SelectFiltersCaseInsensitively) {
  DataSource src(0, Schema("s", {"title", "year"}));
  ASSERT_TRUE(src.AddTuple(Tuple({"Casablanca", "1942"})).ok());
  ASSERT_TRUE(src.AddTuple(Tuple({"Vertigo", "1958"})).ok());
  const auto hits = src.Select({{0, "casablanca"}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].values[0], "Casablanca");
  EXPECT_TRUE(src.Select({{0, "casablanca"}, {1, "1958"}}).empty());
}

TEST(DataSourceTest, RejectsWrongWidthTuple) {
  DataSource src(0, Schema("s", {"a", "b"}));
  EXPECT_TRUE(src.AddTuple(Tuple({"only one"})).IsInvalidArgument());
}

TEST(QueryEngineTest, TupleProbabilityIsMappingTimesMembership) {
  Fixture fx = MakeTwoSourceFixture(0.8, 1.0);
  ASSERT_TRUE(fx.sources[0]->AddTuple(Tuple({"Vertigo"})).ok());
  QueryEngine engine(fx.mediation, fx.SourcePtrs());
  const auto result = engine.Answer({});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  // Pr = Pr(phi) * Pr(S0 in D) = 1.0 * 0.8.
  EXPECT_NEAR((*result)[0].probability, 0.8, 1e-12);
  EXPECT_EQ((*result)[0].tuple.values[0], "Vertigo");
}

TEST(QueryEngineTest, CrossSourceDuplicatesUseNoisyOr) {
  Fixture fx = MakeTwoSourceFixture(0.8, 0.5);
  ASSERT_TRUE(fx.sources[0]->AddTuple(Tuple({"Vertigo"})).ok());
  ASSERT_TRUE(fx.sources[1]->AddTuple(Tuple({"Vertigo"})).ok());
  QueryEngine engine(fx.mediation, fx.SourcePtrs());
  const auto result = engine.Answer({});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  // 1 - (1-0.8)(1-0.5) = 0.9 (the thesis's final consolidation rule).
  EXPECT_NEAR((*result)[0].probability, 0.9, 1e-12);
  EXPECT_EQ((*result)[0].sources.size(), 2u);
}

TEST(QueryEngineTest, SameRawTupleAlternativesSumBeforeNoisyOr) {
  // One source whose two mapping alternatives send the same raw tuple to
  // the same mediated tuple: probabilities sum (mutually exclusive
  // mappings), they do not noisy-or.
  Fixture fx = MakeTwoSourceFixture(1.0, 1.0);
  fx.mediation.mappings[0].alternatives = {{{0}, 0.6}, {{0}, 0.4}};
  ASSERT_TRUE(fx.sources[0]->AddTuple(Tuple({"Vertigo"})).ok());
  QueryEngine engine(fx.mediation, fx.SourcePtrs());
  const auto result = engine.Answer({});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  // Sum: 0.6 + 0.4 = 1.0; noisy-or would give 1-(0.4)(0.6) = 0.76.
  EXPECT_NEAR((*result)[0].probability, 1.0, 1e-12);
}

TEST(QueryEngineTest, PredicateTranslatedThroughMapping) {
  Fixture fx = MakeTwoSourceFixture(1.0, 1.0);
  ASSERT_TRUE(fx.sources[0]->AddTuple(Tuple({"Vertigo"})).ok());
  ASSERT_TRUE(fx.sources[0]->AddTuple(Tuple({"Psycho"})).ok());
  ASSERT_TRUE(fx.sources[1]->AddTuple(Tuple({"Psycho"})).ok());
  QueryEngine engine(fx.mediation, fx.SourcePtrs());
  StructuredQuery q;
  q.predicates.push_back({0, "psycho"});
  const auto result = engine.Answer(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].tuple.values[0], "Psycho");
  EXPECT_EQ((*result)[0].sources.size(), 2u);
}

TEST(QueryEngineTest, UnmappedMediatedAttributeMakesPhiUnsatisfiable) {
  // Source 0's only mapping leaves the queried mediated attribute
  // uncovered -> it cannot contribute.
  Fixture fx = MakeTwoSourceFixture(1.0, 1.0);
  fx.mediation.mediated.attributes.push_back({"year", {"year"}, 1.0});
  fx.mediation.mappings[0].alternatives = {{{0}, 1.0}};  // title only
  fx.mediation.mappings[1].alternatives = {{{1}, 1.0}};  // maps to year
  ASSERT_TRUE(fx.sources[0]->AddTuple(Tuple({"Vertigo"})).ok());
  ASSERT_TRUE(fx.sources[1]->AddTuple(Tuple({"1958"})).ok());
  QueryEngine engine(fx.mediation, fx.SourcePtrs());
  StructuredQuery q;
  q.predicates.push_back({1, "1958"});
  const auto result = engine.Answer(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].tuple.values[1], "1958");
  EXPECT_EQ((*result)[0].tuple.values[0], "");  // null for unmapped slot
}

TEST(QueryEngineTest, MembersWithoutSourcesAreSkipped) {
  Fixture fx = MakeTwoSourceFixture(1.0, 1.0);
  ASSERT_TRUE(fx.sources[1]->AddTuple(Tuple({"Vertigo"})).ok());
  auto ptrs = fx.SourcePtrs();
  ptrs[0] = nullptr;  // member 0 has no attached data
  QueryEngine engine(fx.mediation, ptrs);
  const auto result = engine.Answer({});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].sources,
            (std::vector<std::string>{"src1"}));
}

TEST(QueryEngineTest, ResultsSortedByProbabilityDescending) {
  Fixture fx = MakeTwoSourceFixture(0.9, 0.3);
  ASSERT_TRUE(fx.sources[0]->AddTuple(Tuple({"HighProb"})).ok());
  ASSERT_TRUE(fx.sources[1]->AddTuple(Tuple({"LowProb"})).ok());
  QueryEngine engine(fx.mediation, fx.SourcePtrs());
  const auto result = engine.Answer({});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].tuple.values[0], "HighProb");
  EXPECT_GE((*result)[0].probability, (*result)[1].probability);
}

TEST(QueryEngineTest, OutOfRangePredicateRejected) {
  Fixture fx = MakeTwoSourceFixture(1.0, 1.0);
  QueryEngine engine(fx.mediation, fx.SourcePtrs());
  StructuredQuery q;
  q.predicates.push_back({5, "x"});
  EXPECT_TRUE(engine.Answer(q).status().IsOutOfRange());
}

TEST(QueryEngineTest, DuplicateRawTuplesWithinSourceNoisyOr) {
  Fixture fx = MakeTwoSourceFixture(0.5, 1.0);
  ASSERT_TRUE(fx.sources[0]->AddTuple(Tuple({"Dup"})).ok());
  ASSERT_TRUE(fx.sources[0]->AddTuple(Tuple({"Dup"})).ok());
  QueryEngine engine(fx.mediation, fx.SourcePtrs());
  const auto result = engine.Answer({});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  // Two distinct raw tuples mapping to the same mediated tuple:
  // 1 - (1-0.5)^2 = 0.75.
  EXPECT_NEAR((*result)[0].probability, 0.75, 1e-12);
}

}  // namespace
}  // namespace paygo
