/// \file bitset_kernel_test.cc
/// \brief Differential tests for the bitset popcount kernels.
///
/// The dispatch kernels (AndCount / OrCount / Jaccard — AVX2, NEON, or the
/// portable 4x-unrolled loop depending on the build) must be bit-identical
/// to the always-compiled scalar reference, for every word count 0..9 and
/// for ragged tail widths (1, 63, 64, 65, 127 bits): the tail word is the
/// classic place a vectorized popcount goes wrong. Since every kernel
/// counts exact integers there is no tolerance anywhere — EXPECT_EQ only.

#include <cstddef>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitset.h"

namespace paygo {
namespace {

/// All bit widths the suite sweeps: every whole-word count 0..9 plus the
/// ragged tails the ISSUE calls out, plus a couple of wide ragged sizes
/// that exercise the SIMD main loop AND a tail in the same vector.
std::vector<std::size_t> TestWidths() {
  std::vector<std::size_t> widths;
  for (std::size_t words = 0; words <= 9; ++words) widths.push_back(words * 64);
  for (std::size_t ragged : {1u, 63u, 64u, 65u, 127u}) widths.push_back(ragged);
  widths.push_back(8 * 64 + 17);   // SIMD blocks + odd tail
  widths.push_back(5 * 64 + 63);   // odd word count + full tail word
  return widths;
}

DynamicBitset RandomBitset(std::size_t num_bits, double density,
                           std::mt19937_64* rng) {
  DynamicBitset bits(num_bits);
  std::bernoulli_distribution coin(density);
  for (std::size_t i = 0; i < num_bits; ++i) {
    if (coin(*rng)) bits.Set(i);
  }
  return bits;
}

/// Every kernel flavor against the scalar oracle, plus the internal
/// consistency identities (|a AND b| <= min counts, inclusion-exclusion).
void ExpectKernelsAgree(const DynamicBitset& a, const DynamicBitset& b) {
  const std::size_t and_scalar = DynamicBitset::AndCountScalar(a, b);
  const std::size_t or_scalar = DynamicBitset::OrCountScalar(a, b);

  EXPECT_EQ(DynamicBitset::AndCount(a, b), and_scalar)
      << "dispatch kernel " << DynamicBitset::KernelName()
      << " disagrees with scalar AndCount at " << a.size() << " bits";
  EXPECT_EQ(DynamicBitset::OrCount(a, b), or_scalar)
      << "dispatch kernel " << DynamicBitset::KernelName()
      << " disagrees with scalar OrCount at " << a.size() << " bits";
  EXPECT_EQ(DynamicBitset::AndCountUnrolled(a, b), and_scalar);
  EXPECT_EQ(DynamicBitset::OrCountUnrolled(a, b), or_scalar);

  // Jaccard is a single division of the two exact counts, so the fused
  // AND+OR dispatch pass must reproduce the scalar division bit-for-bit.
  EXPECT_EQ(DynamicBitset::Jaccard(a, b), DynamicBitset::JaccardScalar(a, b));

  // Inclusion-exclusion ties the two counts to the individual popcounts.
  EXPECT_EQ(and_scalar + or_scalar, a.Count() + b.Count());
}

TEST(BitsetKernelTest, KernelNameIsKnownFlavor) {
  const std::string name = DynamicBitset::KernelName();
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "unrolled") << name;
}

TEST(BitsetKernelTest, AllZeros) {
  for (std::size_t width : TestWidths()) {
    DynamicBitset a(width);
    DynamicBitset b(width);
    ExpectKernelsAgree(a, b);
    EXPECT_EQ(DynamicBitset::AndCount(a, b), 0u);
    EXPECT_EQ(DynamicBitset::OrCount(a, b), 0u);
    EXPECT_EQ(DynamicBitset::Jaccard(a, b), 0.0);  // empty/empty convention
  }
}

TEST(BitsetKernelTest, AllOnes) {
  for (std::size_t width : TestWidths()) {
    DynamicBitset a(width);
    DynamicBitset b(width);
    a.SetAll();
    b.SetAll();
    ExpectKernelsAgree(a, b);
    EXPECT_EQ(DynamicBitset::AndCount(a, b), width);
    EXPECT_EQ(DynamicBitset::OrCount(a, b), width);
    if (width > 0) EXPECT_EQ(DynamicBitset::Jaccard(a, b), 1.0);
  }
}

TEST(BitsetKernelTest, AllOnesAgainstAllZeros) {
  for (std::size_t width : TestWidths()) {
    DynamicBitset ones(width);
    ones.SetAll();
    DynamicBitset zeros(width);
    ExpectKernelsAgree(ones, zeros);
    EXPECT_EQ(DynamicBitset::AndCount(ones, zeros), 0u);
    EXPECT_EQ(DynamicBitset::OrCount(ones, zeros), width);
  }
}

TEST(BitsetKernelTest, RandomPatternsEveryWidthAndDensity) {
  std::mt19937_64 rng(20260807);
  for (std::size_t width : TestWidths()) {
    for (double density : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      for (int rep = 0; rep < 8; ++rep) {
        DynamicBitset a = RandomBitset(width, density, &rng);
        DynamicBitset b = RandomBitset(width, density, &rng);
        ExpectKernelsAgree(a, b);
      }
    }
  }
}

TEST(BitsetKernelTest, SingleBitWalkAcrossTailBoundary) {
  // One set bit walked across every position of a 127-bit vector catches
  // any kernel that mishandles a specific lane or the final half word.
  constexpr std::size_t kWidth = 127;
  DynamicBitset ones(kWidth);
  ones.SetAll();
  for (std::size_t i = 0; i < kWidth; ++i) {
    DynamicBitset a(kWidth);
    a.Set(i);
    ExpectKernelsAgree(a, ones);
    EXPECT_EQ(DynamicBitset::AndCount(a, ones), 1u);
    ExpectKernelsAgree(a, a);
    EXPECT_EQ(DynamicBitset::Jaccard(a, a), 1.0);
  }
}

TEST(BitsetKernelTest, JaccardMatchesDefinitionOnRandomInputs) {
  std::mt19937_64 rng(7);
  for (int rep = 0; rep < 64; ++rep) {
    DynamicBitset a = RandomBitset(300, 0.3, &rng);
    DynamicBitset b = RandomBitset(300, 0.3, &rng);
    const std::size_t inter = DynamicBitset::AndCountScalar(a, b);
    const std::size_t uni = DynamicBitset::OrCountScalar(a, b);
    const double expected =
        uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
    EXPECT_EQ(DynamicBitset::Jaccard(a, b), expected);
  }
}

TEST(BitsetKernelTest, AppendSetBitsMatchesSetBits) {
  std::mt19937_64 rng(11);
  std::vector<std::size_t> reused;
  for (std::size_t width : TestWidths()) {
    DynamicBitset a = RandomBitset(width, 0.4, &rng);
    reused.clear();
    a.AppendSetBits(&reused);
    EXPECT_EQ(reused, a.SetBits()) << "width " << width;
    EXPECT_EQ(reused.size(), a.Count());
  }
}

}  // namespace
}  // namespace paygo
