#include <gtest/gtest.h>

#include "core/integration_system.h"
#include "eval/classification_metrics.h"
#include "eval/clustering_metrics.h"
#include "synth/ddh_generator.h"
#include "synth/query_generator.h"
#include "synth/web_generator.h"

namespace paygo {
namespace {

/// End-to-end checks on the synthetic corpora: these assert the qualitative
/// results of Chapter 6 at reduced scale (the full-scale reproductions live
/// in bench/).

TEST(EndToEndTest, DdhClusteringIsNearPerfect) {
  DdhGeneratorOptions opts;
  opts.num_schemas = 250;  // scaled-down DDH
  const SchemaCorpus corpus = MakeDdhCorpus(opts);
  SystemOptions sys_opts;
  sys_opts.hac.tau_c_sim = 0.25;
  sys_opts.assignment.tau_c_sim = 0.25;
  sys_opts.build_mediation = false;
  sys_opts.build_classifier = false;
  const auto sys = IntegrationSystem::Build(corpus, sys_opts);
  ASSERT_TRUE(sys.ok()) << sys.status();
  const ClusteringEvaluation eval =
      EvaluateClustering((*sys)->domains(), (*sys)->corpus());
  // Section 6.2: "precision and recall values above 0.99" on DDH.
  EXPECT_GT(eval.avg_precision, 0.95);
  EXPECT_GT(eval.avg_recall, 0.90);
  EXPECT_LT(eval.frac_unclustered, 0.1);
}

TEST(EndToEndTest, DwClusteringQualityIsHigh) {
  const SchemaCorpus corpus = MakeDwCorpus();
  SystemOptions sys_opts;
  sys_opts.hac.tau_c_sim = 0.25;
  sys_opts.assignment.tau_c_sim = 0.25;
  sys_opts.build_mediation = false;
  sys_opts.build_classifier = false;
  const auto sys = IntegrationSystem::Build(corpus, sys_opts);
  ASSERT_TRUE(sys.ok()) << sys.status();
  const ClusteringEvaluation eval =
      EvaluateClustering((*sys)->domains(), (*sys)->corpus());
  // Table 6.2 reports precision 0.75-0.85 and recall 0.93-0.98 on DW;
  // assert the same quality band loosely.
  EXPECT_GT(eval.avg_precision, 0.6);
  EXPECT_GT(eval.avg_recall, 0.6);
  // Unique schemas must remain unclustered (~25% plus stragglers).
  EXPECT_GT(eval.frac_unclustered, 0.1);
  EXPECT_LT(eval.frac_unclustered, 0.6);
}

TEST(EndToEndTest, DwSsQueryClassificationBeatsChanceAndGrowsWithSize) {
  const SchemaCorpus corpus = MakeDwSsCorpus();
  SystemOptions sys_opts;
  sys_opts.hac.tau_c_sim = 0.25;
  sys_opts.assignment.tau_c_sim = 0.25;
  sys_opts.build_mediation = false;
  const auto sys = IntegrationSystem::Build(corpus, sys_opts);
  ASSERT_TRUE(sys.ok()) << sys.status();
  const IntegrationSystem& s = **sys;

  std::vector<std::vector<std::string>> domain_labels;
  for (std::uint32_t r = 0; r < s.domains().num_domains(); ++r) {
    domain_labels.push_back(DominantLabels(s.domains(), r, s.corpus()));
  }

  const auto gen = QueryGenerator::Build(s.corpus(), s.lexicon(), {});
  ASSERT_TRUE(gen.ok()) << gen.status();
  QueryFeaturizer featurizer(s.tokenizer(), s.vectorizer());
  Rng rng(2024);

  auto run = [&](std::size_t size, std::size_t n) {
    TopKAccumulator acc;
    for (std::size_t i = 0; i < n; ++i) {
      const GeneratedQuery q = gen->Generate(size, rng);
      const auto ranking =
          s.classifier().Classify(featurizer.FeaturizeTerms(q.keywords));
      acc.Record(ranking, domain_labels, q.target_label);
    }
    return acc;
  };

  const TopKAccumulator small = run(2, 60);
  const TopKAccumulator large = run(8, 60);
  // Figure 6.7's shape: accuracy grows with query size and is far above
  // chance (~1/#labels) even for short queries.
  EXPECT_GT(small.Top3Fraction(), 0.3);
  EXPECT_GT(large.Top1Fraction(), 0.5);
  EXPECT_GE(large.Top1Fraction(), small.Top1Fraction() - 0.05);
  EXPECT_GE(large.Top3Fraction(), large.Top1Fraction());
}

TEST(EndToEndTest, DdhQueryClassificationNearPerfect) {
  DdhGeneratorOptions ddh_opts;
  ddh_opts.num_schemas = 250;
  const SchemaCorpus corpus = MakeDdhCorpus(ddh_opts);
  SystemOptions sys_opts;
  sys_opts.hac.tau_c_sim = 0.25;
  sys_opts.assignment.tau_c_sim = 0.25;
  sys_opts.build_mediation = false;
  const auto sys = IntegrationSystem::Build(corpus, sys_opts);
  ASSERT_TRUE(sys.ok());
  const IntegrationSystem& s = **sys;

  std::vector<std::vector<std::string>> domain_labels;
  for (std::uint32_t r = 0; r < s.domains().num_domains(); ++r) {
    domain_labels.push_back(DominantLabels(s.domains(), r, s.corpus()));
  }
  QueryGeneratorOptions gen_opts;
  gen_opts.min_label_fraction = 0.1;  // the thesis's DDH setting
  const auto gen = QueryGenerator::Build(s.corpus(), s.lexicon(), gen_opts);
  ASSERT_TRUE(gen.ok());
  QueryFeaturizer featurizer(s.tokenizer(), s.vectorizer());
  Rng rng(7);
  TopKAccumulator acc;
  for (int i = 0; i < 100; ++i) {
    const GeneratedQuery q = gen->Generate(4, rng);
    acc.Record(s.classifier().Classify(featurizer.FeaturizeTerms(q.keywords)),
               domain_labels, q.target_label);
  }
  // Section 6.4: "top-1 fraction being 1 for all query sizes" except very
  // short queries.
  EXPECT_GT(acc.Top1Fraction(), 0.9);
}

TEST(EndToEndTest, ExactAndFactoredClassifiersAgreeOnRealPipeline) {
  const SchemaCorpus corpus = MakeDwCorpus();
  SystemOptions base;
  base.hac.tau_c_sim = 0.2;
  base.assignment.tau_c_sim = 0.2;
  base.assignment.theta = 0.05;  // produce some uncertain schemas
  base.build_mediation = false;
  base.classifier.engine = ClassifierEngine::kFactored;
  SystemOptions exhaustive = base;
  exhaustive.classifier.engine = ClassifierEngine::kExhaustive;

  const auto sys_f = IntegrationSystem::Build(corpus, base);
  const auto sys_e = IntegrationSystem::Build(corpus, exhaustive);
  ASSERT_TRUE(sys_f.ok());
  ASSERT_TRUE(sys_e.ok()) << sys_e.status();
  const auto& cf = (*sys_f)->classifier();
  const auto& ce = (*sys_e)->classifier();
  ASSERT_EQ(cf.num_domains(), ce.num_domains());
  for (std::uint32_t r = 0; r < cf.num_domains(); ++r) {
    EXPECT_NEAR(cf.Prior(r), ce.Prior(r), 1e-10);
  }
  // Rankings agree on a few probe queries.
  for (const char* probe :
       {"departure airline", "salary employer", "drug dosage"}) {
    const auto rf = (*sys_f)->ClassifyKeywordQuery(probe);
    const auto re = (*sys_e)->ClassifyKeywordQuery(probe);
    ASSERT_TRUE(rf.ok());
    ASSERT_TRUE(re.ok());
    EXPECT_EQ((*rf)[0].domain, (*re)[0].domain) << probe;
  }
}

}  // namespace
}  // namespace paygo
