#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace paygo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tau");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad tau");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tau");
}

TEST(StatusTest, AllFactoriesMatchPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("schema 7");
  EXPECT_EQ(os.str(), "NotFound: schema 7");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  PAYGO_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseHalf(3, &out).IsInvalidArgument());
}

Status FailThenOk(bool fail) {
  PAYGO_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(FailThenOk(false).ok());
  EXPECT_TRUE(FailThenOk(true).IsInternal());
}

}  // namespace
}  // namespace paygo
