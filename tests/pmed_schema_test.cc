#include "mediate/probabilistic_mediated_schema.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

/// Members helper: every schema certain.
std::vector<std::pair<std::uint32_t, double>> All(std::size_t n) {
  std::vector<std::pair<std::uint32_t, double>> out;
  for (std::uint32_t i = 0; i < n; ++i) out.emplace_back(i, 1.0);
  return out;
}

TEST(PMedSchemaTest, NoBorderlinePairsYieldsSingleAlternative) {
  // Clearly identical and clearly different attributes only.
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"title", "authors"}), {});
  corpus.Add(Schema("s1", {"title", "authors"}), {});
  Tokenizer tok;
  PMedSchemaOptions opts;
  opts.base.attr_freq_threshold = 0.0;
  const auto pmed =
      BuildProbabilisticMediatedSchema(corpus, tok, All(2), opts);
  ASSERT_TRUE(pmed.ok()) << pmed.status();
  EXPECT_TRUE(pmed->borderline_pairs.empty());
  ASSERT_EQ(pmed->alternatives.size(), 1u);
  EXPECT_DOUBLE_EQ(pmed->alternatives[0].probability, 1.0);
  EXPECT_EQ(pmed->Modal().size(), 2u);  // title, authors
}

/// Fixture with one genuinely borderline pair: "name" vs "first name" has
/// soft-Dice similarity 2/3 ~ 0.667, right at the default 0.65 threshold.
SchemaCorpus BorderlineCorpus() {
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"first name", "name"}), {});
  corpus.Add(Schema("s1", {"first name", "name"}), {});
  return corpus;
}

TEST(PMedSchemaTest, BorderlinePairGeneratesTwoAlternatives) {
  Tokenizer tok;
  PMedSchemaOptions opts;
  opts.base.attr_freq_threshold = 0.0;
  opts.uncertainty_band = 0.1;
  const auto pmed =
      BuildProbabilisticMediatedSchema(BorderlineCorpus(), tok, All(2), opts);
  ASSERT_TRUE(pmed.ok()) << pmed.status();
  ASSERT_EQ(pmed->borderline_pairs.size(), 1u);
  ASSERT_EQ(pmed->alternatives.size(), 2u);
  // Probabilities sum to 1, descending order.
  EXPECT_NEAR(pmed->alternatives[0].probability +
                  pmed->alternatives[1].probability,
              1.0, 1e-9);
  EXPECT_GE(pmed->alternatives[0].probability,
            pmed->alternatives[1].probability);
  // One alternative merges the pair (1 mediated attribute), the other
  // keeps them apart (2).
  const std::size_t s0 = pmed->alternatives[0].schema.size();
  const std::size_t s1 = pmed->alternatives[1].schema.size();
  EXPECT_EQ(std::min(s0, s1), 1u);
  EXPECT_EQ(std::max(s0, s1), 2u);
}

TEST(PMedSchemaTest, CoMediationProbabilityMatchesAlternatives) {
  Tokenizer tok;
  PMedSchemaOptions opts;
  opts.base.attr_freq_threshold = 0.0;
  const auto pmed =
      BuildProbabilisticMediatedSchema(BorderlineCorpus(), tok, All(2), opts);
  ASSERT_TRUE(pmed.ok());
  const double p = pmed->CoMediationProbability("first name", "name");
  // Equals the probability mass of the merged alternative.
  double merged_mass = 0.0;
  for (const auto& alt : pmed->alternatives) {
    if (alt.schema.size() == 1) merged_mass += alt.probability;
  }
  EXPECT_NEAR(p, merged_mass, 1e-9);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  // An attribute always co-mediates with itself.
  EXPECT_NEAR(pmed->CoMediationProbability("name", "name"), 1.0, 1e-9);
}

TEST(PMedSchemaTest, ModalMatchesDeterministicMediator) {
  // The most probable alternative must coincide with Mediator's output on
  // a corpus where every borderline pair leans one way.
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"title", "paper title", "year"}), {});
  corpus.Add(Schema("s1", {"title", "year"}), {});
  Tokenizer tok;
  PMedSchemaOptions opts;
  opts.base.attr_freq_threshold = 0.0;
  const auto pmed =
      BuildProbabilisticMediatedSchema(corpus, tok, All(2), opts);
  const auto det = Mediator::BuildForDomain(corpus, tok, All(2), opts.base);
  ASSERT_TRUE(pmed.ok());
  ASSERT_TRUE(det.ok());
  // Compare as member-set sets.
  auto key = [](const MediatedSchema& s) {
    std::vector<std::vector<std::string>> k;
    for (const auto& a : s.attributes) k.push_back(a.members);
    std::sort(k.begin(), k.end());
    return k;
  };
  EXPECT_EQ(key(pmed->Modal()), key(det->mediated));
}

TEST(PMedSchemaTest, AlternativeCapRenormalizes) {
  // Several borderline pairs -> many alternatives; the cap must keep
  // probabilities normalized.
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"name", "first name", "last name", "nick name"}),
             {});
  corpus.Add(Schema("s1", {"name", "first name", "last name", "nick name"}),
             {});
  Tokenizer tok;
  PMedSchemaOptions opts;
  opts.base.attr_freq_threshold = 0.0;
  opts.max_alternatives = 3;
  const auto pmed =
      BuildProbabilisticMediatedSchema(corpus, tok, All(2), opts);
  ASSERT_TRUE(pmed.ok()) << pmed.status();
  EXPECT_LE(pmed->alternatives.size(), 3u);
  double total = 0.0;
  for (const auto& alt : pmed->alternatives) total += alt.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PMedSchemaTest, InvalidOptionsRejected) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"alpha"}), {});
  Tokenizer tok;
  PMedSchemaOptions opts;
  opts.uncertainty_band = 0.6;
  EXPECT_TRUE(BuildProbabilisticMediatedSchema(corpus, tok, All(1), opts)
                  .status()
                  .IsInvalidArgument());
  opts.uncertainty_band = 0.1;
  opts.max_borderline_pairs = 50;
  EXPECT_TRUE(BuildProbabilisticMediatedSchema(corpus, tok, All(1), opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(CollectFrequentAttributesTest, WeightsAndFilter) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s0", {"alpha", "beta"}), {});
  corpus.Add(Schema("s1", {"alpha"}), {});
  Tokenizer tok;
  const auto all =
      CollectFrequentAttributes(corpus, tok, {{0, 1.0}, {1, 0.5}}, 0.0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].canonical, "alpha");
  EXPECT_DOUBLE_EQ((*all)[0].weight, 1.5);
  EXPECT_DOUBLE_EQ((*all)[1].weight, 1.0);
  // Threshold 0.8 of total weight 1.5 -> only alpha (1.5/1.5) survives;
  // beta (1.0/1.5 = 0.67) is dropped.
  const auto filtered =
      CollectFrequentAttributes(corpus, tok, {{0, 1.0}, {1, 0.5}}, 0.8);
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered->size(), 1u);
  EXPECT_EQ((*filtered)[0].canonical, "alpha");
}

}  // namespace
}  // namespace paygo
