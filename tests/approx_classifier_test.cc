#include "classify/approx_classifier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace paygo {
namespace {

DynamicBitset Bits(std::size_t dim, std::initializer_list<std::size_t> set) {
  DynamicBitset b(dim);
  for (std::size_t i : set) b.Set(i);
  return b;
}

struct Fixture {
  std::vector<DynamicBitset> features;
  DomainModel model;
  std::size_t total = 0;
};

Fixture MakeRandomDomain(std::uint64_t seed, std::size_t n = 10,
                         std::size_t dim = 8) {
  Rng rng(seed);
  Fixture fx;
  fx.total = n;
  fx.features.assign(n, DynamicBitset(dim));
  std::vector<std::vector<std::uint32_t>> clusters(1);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> sd(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < dim; ++b) {
      if (rng.NextBernoulli(0.4)) fx.features[i].Set(b);
    }
    clusters[0].push_back(i);
    const double p =
        rng.NextBernoulli(0.4) ? 1.0 : 0.1 + 0.8 * rng.NextDouble();
    sd[i] = {{0, p}};
  }
  fx.model = DomainModel::Build(std::move(clusters), std::move(sd));
  return fx;
}

TEST(ExpectedWorldTest, PriorIsExact) {
  // The expected-world prior E|S'|/|S| equals the exact prior by linearity
  // of expectation.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Fixture fx = MakeRandomDomain(seed);
    ApproxClassifierOptions opts;
    opts.kind = ApproxKind::kExpectedWorld;
    const auto approx = ComputeApproxDomainConditionals(
        fx.model, 0, fx.features, fx.total, opts);
    const auto exact = ComputeDomainConditionals(
        fx.model, 0, fx.features, fx.total, ClassifierEngine::kFactored, 24);
    ASSERT_TRUE(approx.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(approx->prior, exact->prior, 1e-12) << "seed " << seed;
  }
}

TEST(ExpectedWorldTest, ConditionalsCloseToExact) {
  const Fixture fx = MakeRandomDomain(42);
  ApproxClassifierOptions opts;
  opts.kind = ApproxKind::kExpectedWorld;
  const auto approx = ComputeApproxDomainConditionals(fx.model, 0, fx.features,
                                                      fx.total, opts);
  const auto exact = ComputeDomainConditionals(
      fx.model, 0, fx.features, fx.total, ClassifierEngine::kFactored, 24);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  for (std::size_t j = 0; j < approx->q1.size(); ++j) {
    // Jensen gap of the 1/(2|S'|+1) factor is small for domains this size.
    EXPECT_NEAR(approx->q1[j], exact->q1[j], 0.05) << "feature " << j;
  }
}

TEST(ExpectedWorldTest, ExactWhenAllMembersCertain) {
  const std::size_t dim = 6;
  std::vector<DynamicBitset> features = {Bits(dim, {0, 1}),
                                         Bits(dim, {1, 2})};
  DomainModel model =
      DomainModel::Build({{0, 1}}, {{{0, 1.0}}, {{0, 1.0}}});
  ApproxClassifierOptions opts;
  opts.kind = ApproxKind::kExpectedWorld;
  const auto approx =
      ComputeApproxDomainConditionals(model, 0, features, 2, opts);
  const auto exact = ComputeDomainConditionals(
      model, 0, features, 2, ClassifierEngine::kFactored, 24);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  // With no uncertainty there is a single world; the approximation is
  // exact.
  EXPECT_NEAR(approx->prior, exact->prior, 1e-12);
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(approx->q1[j], exact->q1[j], 1e-9);
  }
}

TEST(MonteCarloTest, ConvergesToExactWithSamples) {
  const Fixture fx = MakeRandomDomain(7);
  const auto exact = ComputeDomainConditionals(
      fx.model, 0, fx.features, fx.total, ClassifierEngine::kFactored, 24);
  ASSERT_TRUE(exact.ok());

  ApproxClassifierOptions opts;
  opts.kind = ApproxKind::kMonteCarlo;
  opts.num_samples = 20000;
  opts.seed = 3;
  const auto mc = ComputeApproxDomainConditionals(fx.model, 0, fx.features,
                                                  fx.total, opts);
  ASSERT_TRUE(mc.ok());
  EXPECT_NEAR(mc->prior, exact->prior, 0.01);
  for (std::size_t j = 0; j < mc->q1.size(); ++j) {
    EXPECT_NEAR(mc->q1[j], exact->q1[j], 0.02) << "feature " << j;
  }
}

TEST(MonteCarloTest, DeterministicGivenSeed) {
  const Fixture fx = MakeRandomDomain(9);
  ApproxClassifierOptions opts;
  opts.kind = ApproxKind::kMonteCarlo;
  opts.num_samples = 100;
  opts.seed = 5;
  const auto a = ComputeApproxDomainConditionals(fx.model, 0, fx.features,
                                                 fx.total, opts);
  const auto b = ComputeApproxDomainConditionals(fx.model, 0, fx.features,
                                                 fx.total, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->prior, b->prior);
  for (std::size_t j = 0; j < a->q1.size(); ++j) {
    EXPECT_DOUBLE_EQ(a->q1[j], b->q1[j]);
  }
}

TEST(MonteCarloTest, RejectsZeroSamples) {
  const Fixture fx = MakeRandomDomain(9);
  ApproxClassifierOptions opts;
  opts.kind = ApproxKind::kMonteCarlo;
  opts.num_samples = 0;
  EXPECT_TRUE(ComputeApproxDomainConditionals(fx.model, 0, fx.features,
                                              fx.total, opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(ApproxClassifierTest, BuildsAndRanksLikeExactOnSeparableDomains) {
  const std::size_t dim = 8;
  std::vector<DynamicBitset> features = {
      Bits(dim, {0, 1, 2}), Bits(dim, {0, 1}), Bits(dim, {5, 6, 7}),
      Bits(dim, {6, 7})};
  DomainModel model = DomainModel::Build(
      {{0, 1}, {2, 3}},
      {{{0, 1.0}}, {{0, 0.9}, {1, 0.1}}, {{1, 1.0}}, {{1, 1.0}}});
  for (ApproxKind kind :
       {ApproxKind::kExpectedWorld, ApproxKind::kMonteCarlo}) {
    ApproxClassifierOptions opts;
    opts.kind = kind;
    opts.num_samples = 2000;
    const auto clf = BuildApproxClassifier(model, features, 4, opts);
    ASSERT_TRUE(clf.ok()) << clf.status();
    EXPECT_EQ(clf->Classify(Bits(dim, {0, 1}))[0].domain, 0u);
    EXPECT_EQ(clf->Classify(Bits(dim, {6, 7}))[0].domain, 1u);
  }
}

}  // namespace
}  // namespace paygo
