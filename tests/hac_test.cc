#include "cluster/hac.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace paygo {
namespace {

/// Two tight groups of near-identical vectors plus one outlier.
std::vector<DynamicBitset> TwoGroupsAndOutlier() {
  std::vector<DynamicBitset> f(7, DynamicBitset(20));
  // Group A: features {0..5} with one bit of per-schema variation.
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t b = 0; b < 6; ++b) f[s].Set(b);
    f[s].Set(6 + s);  // small variation
  }
  // Group B: features {10..15}.
  for (std::size_t s = 3; s < 6; ++s) {
    for (std::size_t b = 10; b < 16; ++b) f[s].Set(b);
    f[s].Set(16 + (s - 3) % 2);
  }
  // Outlier: feature {19} only.
  f[6].Set(19);
  return f;
}

std::vector<std::vector<std::uint32_t>> SortedClusters(const HacResult& r) {
  auto c = r.clusters;
  std::sort(c.begin(), c.end());
  return c;
}

TEST(HacTest, RecoversTwoGroupsAndLeavesOutlier) {
  const auto features = TwoGroupsAndOutlier();
  HacOptions opts;
  opts.tau_c_sim = 0.3;
  const auto result = Hac::Run(features, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto clusters = SortedClusters(*result);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0], (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(clusters[1], (std::vector<std::uint32_t>{3, 4, 5}));
  EXPECT_EQ(clusters[2], (std::vector<std::uint32_t>{6}));
  EXPECT_EQ(result->NumSingletons(), 1u);
}

TEST(HacTest, TauOneMergesOnlyIdenticalVectors) {
  const auto features = TwoGroupsAndOutlier();
  HacOptions opts;
  opts.tau_c_sim = 1.0;
  const auto result = Hac::Run(features, opts);
  ASSERT_TRUE(result.ok());
  // Schemas 3 and 5 have identical vectors (similarity exactly 1) and must
  // merge; nothing else may.
  EXPECT_EQ(result->clusters.size(), features.size() - 1);
  EXPECT_EQ(result->ClusterOf(3), result->ClusterOf(5));
  EXPECT_NE(result->ClusterOf(3), result->ClusterOf(4));
}

TEST(HacTest, TauZeroMergesEverything) {
  const auto features = TwoGroupsAndOutlier();
  HacOptions opts;
  opts.tau_c_sim = 0.0;
  const auto result = Hac::Run(features, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 1u);
  EXPECT_EQ(result->clusters[0].size(), features.size());
}

TEST(HacTest, MergeSimilaritiesAreNonIncreasingForAverageLinkage) {
  const auto features = TwoGroupsAndOutlier();
  HacOptions opts;
  opts.tau_c_sim = 0.0;
  const auto result = Hac::Run(features, opts);
  ASSERT_TRUE(result.ok());
  // Group-average linkage on Jaccard similarities is reducible, so merge
  // similarity never increases.
  for (std::size_t k = 1; k < result->merges.size(); ++k) {
    EXPECT_LE(result->merges[k].similarity,
              result->merges[k - 1].similarity + 1e-9);
  }
}

TEST(HacTest, ClusterOfLocatesEverySchema) {
  const auto features = TwoGroupsAndOutlier();
  HacOptions opts;
  opts.tau_c_sim = 0.3;
  const auto result = Hac::Run(features, opts);
  ASSERT_TRUE(result.ok());
  for (std::uint32_t i = 0; i < features.size(); ++i) {
    const std::uint32_t c = result->ClusterOf(i);
    const auto& cluster = result->clusters[c];
    EXPECT_TRUE(std::binary_search(cluster.begin(), cluster.end(), i));
  }
}

TEST(HacTest, ClustersPartitionTheInput) {
  const auto features = TwoGroupsAndOutlier();
  for (LinkageKind kind : AllLinkageKinds()) {
    HacOptions opts;
    opts.linkage = kind;
    opts.tau_c_sim = 0.4;
    const auto result = Hac::Run(features, opts);
    ASSERT_TRUE(result.ok());
    std::vector<std::uint32_t> all;
    for (const auto& c : result->clusters) {
      all.insert(all.end(), c.begin(), c.end());
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), features.size());
    for (std::uint32_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
  }
}

TEST(HacTest, InvalidArguments) {
  std::vector<DynamicBitset> features(2, DynamicBitset(4));
  HacOptions opts;
  opts.tau_c_sim = 1.5;
  EXPECT_TRUE(Hac::Run(features, opts).status().IsInvalidArgument());

  opts.tau_c_sim = 0.5;
  std::vector<DynamicBitset> ragged = {DynamicBitset(4), DynamicBitset(5)};
  EXPECT_TRUE(Hac::Run(ragged, opts).status().IsInvalidArgument());
}

TEST(HacTest, EmptyInputYieldsEmptyResult) {
  const auto result = Hac::Run({}, HacOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->clusters.empty());
}

TEST(HacTest, SingleSchemaStaysSingleton) {
  std::vector<DynamicBitset> f(1, DynamicBitset(4));
  f[0].Set(0);
  const auto result = Hac::Run(f, HacOptions{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clusters.size(), 1u);
  EXPECT_EQ(result->NumSingletons(), 1u);
}

TEST(HacTest, MaxClustersStopsAtExactCount) {
  const auto features = TwoGroupsAndOutlier();
  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    HacOptions opts;
    opts.max_clusters = k;
    opts.tau_c_sim = 0.99;  // would stop immediately; must be ignored
    const auto result = Hac::Run(features, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->clusters.size(), k) << "k=" << k;
  }
}

TEST(HacTest, MaxClustersMatchesNaiveEngine) {
  const auto features = TwoGroupsAndOutlier();
  HacOptions fast;
  fast.max_clusters = 3;
  HacOptions naive = fast;
  naive.use_naive_engine = true;
  const auto rf = Hac::Run(features, fast);
  const auto rn = Hac::Run(features, naive);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_EQ(SortedClusters(*rf), SortedClusters(*rn));
  // The 3-cluster cut is the intended structure.
  EXPECT_EQ(rf->clusters.size(), 3u);
}

/// Property: the heap engine produces the same final clustering as the
/// naive O(n^3) reference, across all four linkages and several thresholds.
struct EngineParam {
  LinkageKind linkage;
  double tau;
};

class HacEngineAgreementTest : public ::testing::TestWithParam<EngineParam> {};

TEST_P(HacEngineAgreementTest, FastMatchesNaive) {
  const EngineParam param = GetParam();
  Rng rng(31 + static_cast<int>(param.linkage) * 100 +
          static_cast<int>(param.tau * 10));
  // Random sparse vectors with planted group structure.
  const std::size_t n = 40, dim = 60;
  std::vector<DynamicBitset> features(n, DynamicBitset(dim));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t group = i % 4;
    for (std::size_t b = group * 12; b < group * 12 + 12; ++b) {
      if (rng.NextBernoulli(0.6)) features[i].Set(b);
    }
    for (std::size_t b = 48; b < dim; ++b) {
      if (rng.NextBernoulli(0.1)) features[i].Set(b);
    }
  }
  HacOptions fast;
  fast.linkage = param.linkage;
  fast.tau_c_sim = param.tau;
  HacOptions naive = fast;
  naive.use_naive_engine = true;

  const auto fast_result = Hac::Run(features, fast);
  const auto naive_result = Hac::Run(features, naive);
  ASSERT_TRUE(fast_result.ok());
  ASSERT_TRUE(naive_result.ok());
  EXPECT_EQ(SortedClusters(*fast_result), SortedClusters(*naive_result))
      << LinkageKindName(param.linkage) << " tau=" << param.tau;
}

INSTANTIATE_TEST_SUITE_P(
    LinkagesAndThresholds, HacEngineAgreementTest,
    ::testing::Values(EngineParam{LinkageKind::kAverage, 0.2},
                      EngineParam{LinkageKind::kAverage, 0.4},
                      EngineParam{LinkageKind::kMin, 0.2},
                      EngineParam{LinkageKind::kMin, 0.4},
                      EngineParam{LinkageKind::kMax, 0.3},
                      EngineParam{LinkageKind::kMax, 0.5},
                      EngineParam{LinkageKind::kTotal, 0.2},
                      EngineParam{LinkageKind::kTotal, 0.4}));

}  // namespace
}  // namespace paygo
