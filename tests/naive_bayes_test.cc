#include "classify/naive_bayes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace paygo {
namespace {

/// Builds a DomainModel directly from (cluster, membership) specs.
DomainModel MakeModel(
    std::vector<std::vector<std::uint32_t>> clusters,
    std::vector<std::vector<std::pair<std::uint32_t, double>>> schema_domains) {
  return DomainModel::Build(std::move(clusters), std::move(schema_domains));
}

DynamicBitset Bits(std::size_t dim, std::initializer_list<std::size_t> set) {
  DynamicBitset b(dim);
  for (std::size_t i : set) b.Set(i);
  return b;
}

// Hand-computed example (see the derivation in the accompanying comments):
// domain 0 has certain schema s0 and uncertain schema s1 with p = 0.6,
// |S| = 4, dim L = 3, m-estimate p = 1/3.
// Possible worlds: {s0} (Pr .4, |S'| = 1) and {s0, s1} (Pr .6, |S'| = 2).
//   omega({s0})     = (1/4) * 0.4 = 0.1
//   omega({s0,s1})  = (2/4) * 0.6 = 0.3
//   Pr(D0)          = 0.4;   Pr(S'|D0) = 0.25 / 0.75
// With f0 = {bit0}, f1 = {bit0, bit1}:
//   q1[0] = .25*(1 + 2/3)/3        + .75*(2 + 1)/5        = 0.588888...
//   q1[1] = .25*(0 + 2/3)/3        + .75*(1 + 1)/5        = 0.355555...
//   q1[2] = .25*(0 + 2/3)/3        + .75*(0 + 1)/5        = 0.205555...
class HandComputedCase : public ::testing::TestWithParam<ClassifierEngine> {
 protected:
  void Run() {
    const std::size_t dim = 3;
    std::vector<DynamicBitset> features = {Bits(dim, {0}), Bits(dim, {0, 1})};
    DomainModel model = MakeModel({{0, 1}}, {{{0, 1.0}}, {{0, 0.6}}});
    const auto cond =
        ComputeDomainConditionals(model, 0, features, 4, GetParam(), 24);
    ASSERT_TRUE(cond.ok()) << cond.status();
    EXPECT_NEAR(cond->prior, 0.4, 1e-12);
    ASSERT_EQ(cond->q1.size(), 3u);
    EXPECT_NEAR(cond->q1[0], 0.25 * (1 + 2.0 / 3) / 3 + 0.75 * 3.0 / 5, 1e-12);
    EXPECT_NEAR(cond->q1[1], 0.25 * (2.0 / 3) / 3 + 0.75 * 2.0 / 5, 1e-12);
    EXPECT_NEAR(cond->q1[2], 0.25 * (2.0 / 3) / 3 + 0.75 * 1.0 / 5, 1e-12);
  }
};

TEST_P(HandComputedCase, MatchesManualDerivation) { Run(); }

INSTANTIATE_TEST_SUITE_P(Engines, HandComputedCase,
                         ::testing::Values(ClassifierEngine::kExhaustive,
                                           ClassifierEngine::kFactored));

TEST(NaiveBayesTest, AllCertainDomainIsSingleWorld) {
  const std::size_t dim = 4;
  std::vector<DynamicBitset> features = {Bits(dim, {0, 1}), Bits(dim, {1, 2})};
  DomainModel model = MakeModel({{0, 1}}, {{{0, 1.0}}, {{0, 1.0}}});
  const auto cond = ComputeDomainConditionals(
      model, 0, features, 2, ClassifierEngine::kFactored, 24);
  ASSERT_TRUE(cond.ok());
  // Single world {s0, s1}: prior = 2/2 = 1; m = 3, denom = 5, p = 1/4.
  EXPECT_NEAR(cond->prior, 1.0, 1e-12);
  EXPECT_NEAR(cond->q1[0], (1 + 3.0 / 4) / 5, 1e-12);
  EXPECT_NEAR(cond->q1[1], (2 + 3.0 / 4) / 5, 1e-12);
  EXPECT_NEAR(cond->q1[3], (0 + 3.0 / 4) / 5, 1e-12);
}

TEST(NaiveBayesTest, ConditionalsStayInsideOpenUnitInterval) {
  // The m-estimate's purpose (Section 5.2): no feature probability may hit
  // 0 or 1, so extra/missing query terms never zero out a posterior.
  const std::size_t dim = 5;
  std::vector<DynamicBitset> features = {Bits(dim, {0, 1, 2, 3, 4}),
                                         Bits(dim, {})};
  DomainModel model = MakeModel({{0}, {1}}, {{{0, 1.0}}, {{1, 1.0}}});
  for (std::uint32_t r = 0; r < 2; ++r) {
    const auto cond = ComputeDomainConditionals(
        model, r, features, 2, ClassifierEngine::kFactored, 24);
    ASSERT_TRUE(cond.ok());
    for (double q : cond->q1) {
      EXPECT_GT(q, 0.0);
      EXPECT_LT(q, 1.0);
    }
  }
}

TEST(NaiveBayesTest, ExhaustiveRefusesTooManyUncertainSchemas) {
  const std::size_t n = 30;
  std::vector<DynamicBitset> features(n, DynamicBitset(4));
  std::vector<std::vector<std::uint32_t>> clusters(1);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> sd(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    clusters[0].push_back(i);
    sd[i] = {{0, 0.5}};
  }
  DomainModel model = MakeModel(std::move(clusters), std::move(sd));
  ClassifierOptions opts;
  opts.engine = ClassifierEngine::kExhaustive;
  opts.max_uncertain_exhaustive = 10;
  const auto clf = NaiveBayesClassifier::Build(model, features, n, opts);
  EXPECT_TRUE(clf.status().IsResourceExhausted());

  // The factored engine handles the same domain without a limit.
  opts.engine = ClassifierEngine::kFactored;
  EXPECT_TRUE(NaiveBayesClassifier::Build(model, features, n, opts).ok());
}

TEST(NaiveBayesTest, ClassifiesObviousQueriesCorrectly) {
  // Domain 0 over features {0,1,2}; domain 1 over features {5,6,7}.
  const std::size_t dim = 8;
  std::vector<DynamicBitset> features = {
      Bits(dim, {0, 1, 2}), Bits(dim, {0, 1}), Bits(dim, {5, 6, 7}),
      Bits(dim, {6, 7})};
  DomainModel model = MakeModel(
      {{0, 1}, {2, 3}},
      {{{0, 1.0}}, {{0, 1.0}}, {{1, 1.0}}, {{1, 1.0}}});
  const auto clf = NaiveBayesClassifier::Build(model, features, 4, {});
  ASSERT_TRUE(clf.ok()) << clf.status();
  const auto r0 = clf->Classify(Bits(dim, {0, 1}));
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0].domain, 0u);
  const auto r1 = clf->Classify(Bits(dim, {6}));
  EXPECT_EQ(r1[0].domain, 1u);
  EXPECT_GT(r0[0].log_posterior, r0[1].log_posterior);
}

TEST(NaiveBayesTest, ExtraTermDoesNotZeroOutRelevantDomain) {
  const std::size_t dim = 8;
  std::vector<DynamicBitset> features = {
      Bits(dim, {0, 1, 2}), Bits(dim, {0, 1}), Bits(dim, {5, 6, 7}),
      Bits(dim, {6, 7})};
  DomainModel model = MakeModel(
      {{0, 1}, {2, 3}},
      {{{0, 1.0}}, {{0, 1.0}}, {{1, 1.0}}, {{1, 1.0}}});
  const auto clf = NaiveBayesClassifier::Build(model, features, 4, {});
  ASSERT_TRUE(clf.ok());
  // Query {0, 1, 4}: bit 4 appears in no schema at all (an "extra term").
  const auto r = clf->Classify(Bits(dim, {0, 1, 4}));
  EXPECT_EQ(r[0].domain, 0u);
  EXPECT_TRUE(std::isfinite(r[0].log_posterior));
}

TEST(NaiveBayesTest, MissingTermDoesNotZeroOutDomain) {
  // Every schema of domain 0 contains feature 0; a query without it must
  // still be classifiable into domain 0.
  const std::size_t dim = 6;
  std::vector<DynamicBitset> features = {Bits(dim, {0, 1, 2}),
                                         Bits(dim, {0, 1, 3}),
                                         Bits(dim, {5})};
  DomainModel model =
      MakeModel({{0, 1}, {2}}, {{{0, 1.0}}, {{0, 1.0}}, {{1, 1.0}}});
  const auto clf = NaiveBayesClassifier::Build(model, features, 3, {});
  ASSERT_TRUE(clf.ok());
  const auto r = clf->Classify(Bits(dim, {1}));
  EXPECT_EQ(r[0].domain, 0u);
  EXPECT_TRUE(std::isfinite(r[0].log_posterior));
}

TEST(NaiveBayesTest, SkipSingletonDomainsOption) {
  const std::size_t dim = 4;
  std::vector<DynamicBitset> features = {Bits(dim, {0}), Bits(dim, {0, 1}),
                                         Bits(dim, {3})};
  DomainModel model =
      MakeModel({{0, 1}, {2}}, {{{0, 1.0}}, {{0, 1.0}}, {{1, 1.0}}});
  ClassifierOptions opts;
  opts.skip_singleton_domains = true;
  const auto clf = NaiveBayesClassifier::Build(model, features, 3, opts);
  ASSERT_TRUE(clf.ok());
  const auto r = clf->Classify(Bits(dim, {3}));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].domain, 0u);
}

TEST(NaiveBayesTest, EmptyDomainGetsZeroPrior) {
  // A domain whose cluster exists but whose member list is empty (all
  // schemas dropped under strict Algorithm 3 semantics).
  const std::size_t dim = 4;
  std::vector<DynamicBitset> features = {Bits(dim, {0}), Bits(dim, {1})};
  DomainModel model = MakeModel({{0, 1}}, {{}, {}});
  const auto cond = ComputeDomainConditionals(
      model, 0, features, 2, ClassifierEngine::kFactored, 24);
  ASSERT_TRUE(cond.ok());
  EXPECT_DOUBLE_EQ(cond->prior, 0.0);
}

TEST(NaiveBayesTest, DeterministicTieBreakByDomainId) {
  const std::size_t dim = 4;
  // Two structurally identical domains.
  std::vector<DynamicBitset> features = {Bits(dim, {0}), Bits(dim, {0})};
  DomainModel model = MakeModel({{0}, {1}}, {{{0, 1.0}}, {{1, 1.0}}});
  const auto clf = NaiveBayesClassifier::Build(model, features, 2, {});
  ASSERT_TRUE(clf.ok());
  const auto r = clf->Classify(Bits(dim, {0}));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].domain, 0u);
  EXPECT_EQ(r[1].domain, 1u);
  EXPECT_DOUBLE_EQ(r[0].log_posterior, r[1].log_posterior);
}

/// Property: the factored engine agrees with the exhaustive enumeration on
/// randomized probabilistic domains (the exponential-to-polynomial
/// reduction must be algebraically exact).
class EngineAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineAgreementTest, FactoredEqualsExhaustive) {
  Rng rng(1000 + GetParam());
  const std::size_t n = 12, dim = 10;
  std::vector<DynamicBitset> features(n, DynamicBitset(dim));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < dim; ++b) {
      if (rng.NextBernoulli(0.35)) features[i].Set(b);
    }
  }
  // One domain with a random mix of certain and uncertain members.
  std::vector<std::vector<std::uint32_t>> clusters(1);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> sd(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    clusters[0].push_back(i);
    const double p =
        rng.NextBernoulli(0.5) ? 1.0 : 0.05 + 0.9 * rng.NextDouble();
    sd[i] = {{0, p}};
  }
  DomainModel model = MakeModel(std::move(clusters), std::move(sd));

  const auto exact = ComputeDomainConditionals(
      model, 0, features, n, ClassifierEngine::kExhaustive, 24);
  const auto factored = ComputeDomainConditionals(
      model, 0, features, n, ClassifierEngine::kFactored, 24);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(factored.ok());
  EXPECT_NEAR(exact->prior, factored->prior, 1e-12);
  ASSERT_EQ(exact->q1.size(), factored->q1.size());
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(exact->q1[j], factored->q1[j], 1e-10) << "feature " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace paygo
