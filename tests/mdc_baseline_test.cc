#include "baseline/mdc_clustering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eval/clustering_metrics.h"
#include "synth/ddh_generator.h"

namespace paygo {
namespace {

SchemaCorpus ThreeDomainCorpus() {
  SchemaCorpus corpus;
  corpus.Add(Schema("t1", {"departure airport", "destination", "airline"}),
             {"travel"});
  corpus.Add(Schema("t2", {"departure airport", "airline", "passengers"}),
             {"travel"});
  corpus.Add(Schema("t3", {"destination", "airline", "departure"}),
             {"travel"});
  corpus.Add(Schema("b1", {"title", "authors", "journal"}), {"bib"});
  corpus.Add(Schema("b2", {"title", "authors", "publisher"}), {"bib"});
  corpus.Add(Schema("c1", {"make", "model", "mileage"}), {"cars"});
  corpus.Add(Schema("c2", {"make", "model", "price"}), {"cars"});
  return corpus;
}

TEST(ChiSquareSimilarityTest, IdenticalDistributionsScoreHighest) {
  const std::vector<std::uint32_t> a = {3, 2, 0, 1};
  const std::vector<std::uint32_t> b = {3, 2, 0, 1};
  const std::vector<std::uint32_t> c = {0, 0, 4, 2};
  const double same = MdcBaseline::ChiSquareSimilarity(a, 6, b, 6);
  const double diff = MdcBaseline::ChiSquareSimilarity(a, 6, c, 6);
  EXPECT_GT(same, diff);
  EXPECT_NEAR(same, 1.0, 1e-9);  // zero chi-square
  EXPECT_GT(same, 0.0);
  EXPECT_LE(same, 1.0);
}

TEST(ChiSquareSimilarityTest, EmptyClusterScoresZero) {
  const std::vector<std::uint32_t> a = {1, 1};
  const std::vector<std::uint32_t> empty = {0, 0};
  EXPECT_DOUBLE_EQ(MdcBaseline::ChiSquareSimilarity(a, 2, empty, 0), 0.0);
}

TEST(ChiSquareSimilarityTest, Symmetric) {
  const std::vector<std::uint32_t> a = {3, 1, 0};
  const std::vector<std::uint32_t> b = {1, 2, 2};
  EXPECT_DOUBLE_EQ(MdcBaseline::ChiSquareSimilarity(a, 4, b, 5),
                   MdcBaseline::ChiSquareSimilarity(b, 5, a, 4));
}

TEST(MdcBaselineTest, RecoversDomainsWithCorrectK) {
  const SchemaCorpus corpus = ThreeDomainCorpus();
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  MdcOptions opts;
  opts.num_clusters = 3;
  const auto result = MdcBaseline::Run(lexicon, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->clusters.size(), 3u);
  // Evaluate purity via the shared metric suite.
  const DomainModel model = HardAssignment(*result, corpus.size());
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  EXPECT_DOUBLE_EQ(eval.avg_precision, 1.0);
  EXPECT_DOUBLE_EQ(eval.avg_recall, 1.0);
}

TEST(MdcBaselineTest, TooSmallKMixesTrueDomains) {
  const SchemaCorpus corpus = ThreeDomainCorpus();
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  MdcOptions opts;
  opts.num_clusters = 2;  // forces two true domains to merge
  const auto result = MdcBaseline::Run(lexicon, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clusters.size(), 2u);
  // Some cluster necessarily spans two distinct ground-truth labels.
  bool mixed = false;
  for (const auto& cluster : result->clusters) {
    std::set<std::string> labels;
    for (std::uint32_t i : cluster) {
      labels.insert(corpus.labels(i).begin(), corpus.labels(i).end());
    }
    if (labels.size() > 1) mixed = true;
  }
  EXPECT_TRUE(mixed);
}

TEST(MdcBaselineTest, TooLargeKFragmentsTrueDomains) {
  const SchemaCorpus corpus = ThreeDomainCorpus();
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  MdcOptions opts;
  opts.num_clusters = 5;  // more clusters than true domains
  const auto result = MdcBaseline::Run(lexicon, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clusters.size(), 5u);
  const DomainModel model = HardAssignment(*result, corpus.size());
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  // Some label is split across several clusters.
  EXPECT_GT(eval.fragmentation + eval.frac_unclustered, 1.0);
}

TEST(MdcBaselineTest, ProducesExactlyKClustersOnDdh) {
  DdhGeneratorOptions gen;
  gen.num_schemas = 150;
  const SchemaCorpus corpus = MakeDdhCorpus(gen);
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  MdcOptions opts;
  opts.num_clusters = 5;
  const auto result = MdcBaseline::Run(lexicon, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 5u);
  const DomainModel model = HardAssignment(*result, corpus.size());
  const ClusteringEvaluation eval = EvaluateClustering(model, corpus);
  // With the right k on sharply separated domains the baseline does well.
  EXPECT_GT(eval.avg_precision, 0.9);
}

TEST(MdcBaselineTest, AnchorSeedingWorks) {
  const SchemaCorpus corpus = ThreeDomainCorpus();
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  MdcOptions opts;
  opts.num_clusters = 3;
  opts.use_anchor_seeding = true;
  const auto result = MdcBaseline::Run(lexicon, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 3u);
}

TEST(MdcBaselineTest, ClustersPartitionTheSchemas) {
  const SchemaCorpus corpus = ThreeDomainCorpus();
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  for (std::size_t k : {1u, 2u, 4u, 7u}) {
    MdcOptions opts;
    opts.num_clusters = k;
    const auto result = MdcBaseline::Run(lexicon, opts);
    ASSERT_TRUE(result.ok());
    std::vector<std::uint32_t> all;
    for (const auto& c : result->clusters) {
      all.insert(all.end(), c.begin(), c.end());
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), corpus.size());
    for (std::uint32_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
  }
}

TEST(MdcBaselineTest, KLargerThanNKeepsSingletons) {
  const SchemaCorpus corpus = ThreeDomainCorpus();
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  MdcOptions opts;
  opts.num_clusters = 100;
  const auto result = MdcBaseline::Run(lexicon, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), corpus.size());
}

TEST(MdcBaselineTest, ZeroKRejected) {
  const SchemaCorpus corpus = ThreeDomainCorpus();
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  MdcOptions opts;
  opts.num_clusters = 0;
  EXPECT_TRUE(MdcBaseline::Run(lexicon, opts).status().IsInvalidArgument());
}

TEST(HardAssignmentTest, EverySchemaHasProbabilityOne) {
  HacResult clustering;
  clustering.clusters = {{0, 2}, {1}};
  const DomainModel model = HardAssignment(clustering, 3);
  EXPECT_DOUBLE_EQ(model.Membership(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.Membership(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.Membership(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.Membership(1, 0), 0.0);
  EXPECT_TRUE(model.UncertainSchemas(0).empty());
}

}  // namespace
}  // namespace paygo
