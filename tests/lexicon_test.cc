#include "schema/lexicon.h"

#include <gtest/gtest.h>

namespace paygo {
namespace {

SchemaCorpus MakeCorpus() {
  SchemaCorpus corpus;
  corpus.Add(Schema("s1", {"title", "authors", "year of publish"}), {});
  corpus.Add(Schema("s2", {"make", "model", "year"}), {});
  corpus.Add(Schema("s3", {"title", "director"}), {});
  return corpus;
}

TEST(LexiconTest, TermsSortedAndDistinct) {
  const SchemaCorpus corpus = MakeCorpus();
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  // {authors, director, make, model, publish, title, year}
  EXPECT_EQ(lex.dim(), 7u);
  EXPECT_TRUE(std::is_sorted(lex.terms().begin(), lex.terms().end()));
  EXPECT_EQ(lex.term(0), "authors");
}

TEST(LexiconTest, IndexOfRoundTrips) {
  const SchemaCorpus corpus = MakeCorpus();
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  for (std::size_t j = 0; j < lex.dim(); ++j) {
    const auto idx = lex.IndexOf(lex.term(j));
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, j);
  }
  EXPECT_FALSE(lex.IndexOf("nonexistent").has_value());
}

TEST(LexiconTest, SchemaTermsAreSortedIndices) {
  const SchemaCorpus corpus = MakeCorpus();
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  EXPECT_EQ(lex.num_schemas(), 3u);
  // s2 = {make, model, year}.
  const auto& t2 = lex.schema_terms(1);
  ASSERT_EQ(t2.size(), 3u);
  EXPECT_EQ(lex.term(t2[0]), "make");
  EXPECT_EQ(lex.term(t2[1]), "model");
  EXPECT_EQ(lex.term(t2[2]), "year");
}

TEST(LexiconTest, TermFrequencyCountsSchemas) {
  const SchemaCorpus corpus = MakeCorpus();
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  EXPECT_EQ(lex.TermFrequency(*lex.IndexOf("title")), 2u);
  EXPECT_EQ(lex.TermFrequency(*lex.IndexOf("year")), 2u);
  EXPECT_EQ(lex.TermFrequency(*lex.IndexOf("director")), 1u);
}

TEST(LexiconTest, DuplicateTermsWithinSchemaCountOnce) {
  SchemaCorpus corpus;
  corpus.Add(Schema("s", {"first name", "last name", "middle name"}), {});
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  // {first, last, middle, name}.
  EXPECT_EQ(lex.dim(), 4u);
  EXPECT_EQ(lex.TermFrequency(*lex.IndexOf("name")), 1u);
  EXPECT_EQ(lex.schema_terms(0).size(), 4u);
}

TEST(LexiconTest, EmptyCorpus) {
  SchemaCorpus corpus;
  Tokenizer tok;
  const Lexicon lex = Lexicon::Build(corpus, tok);
  EXPECT_EQ(lex.dim(), 0u);
  EXPECT_EQ(lex.num_schemas(), 0u);
}

}  // namespace
}  // namespace paygo
